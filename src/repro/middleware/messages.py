"""Typed messages exchanged by the middleware components.

Clients talk to the load balancer; the load balancer talks to replica
proxies; proxies talk to the certifier.  Every message is a small frozen
dataclass so tests can pattern-match on traffic via network taps.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from ..storage.writeset import WriteSet

__all__ = [
    "next_request_id",
    "ClientRequest",
    "ClientResponse",
    "RoutedRequest",
    "TxnResponse",
    "CertifyRequest",
    "CertifyReply",
    "RefreshWriteset",
    "CommitApplied",
    "GlobalCommitNotice",
    "RecoveryRequest",
    "RecoveryReply",
    "HeartbeatPing",
    "HeartbeatAck",
    "FateQuery",
    "FateReply",
    "DecisionRecord",
    "DecisionAck",
    "CertifierSuspected",
    "StandbyPromoted",
    "DigestRequest",
    "DigestReply",
    "TableSyncRequest",
    "TableSyncReply",
    "RepairApply",
    "RepairAck",
    "CatchUpRequest",
    "CheckpointInstall",
    "CheckpointInstalled",
    "BootstrapRequired",
]

_request_ids = itertools.count(1)


def next_request_id() -> int:
    """Globally unique client-request identifier."""
    return next(_request_ids)


@dataclass(frozen=True)
class ClientRequest:
    """Client → load balancer: run one transaction.

    ``template`` names a registered transaction template (the paper's
    *transaction identifier*, which SC-FINE uses to look up the table-set);
    ``params`` are the prepared-statement parameters; ``session_id``
    identifies the client's session; ``reply_to`` is the client's endpoint.
    ``degradable`` marks a read-only request the client is willing to have
    served at a weaker consistency level while the balancer's degradation
    valve is open (ignored for updates and when the valve is unconfigured).
    """

    request_id: int
    template: str
    params: Mapping[str, Any]
    session_id: str
    reply_to: str
    submit_time: float
    degradable: bool = False


@dataclass(frozen=True)
class ClientResponse:
    """Load balancer → client: transaction outcome.

    ``overloaded`` marks a fast-reject by admission control: the request was
    shed before it started, and ``retry_after_ms`` hints when a retry has a
    chance of being admitted.
    """

    request_id: int
    committed: bool
    commit_version: Optional[int]
    abort_reason: Optional[str]
    replica: str
    stages: "Any"  # metrics.StageTimings; Any avoids a circular import
    snapshot_version: int = 0
    result: Any = None
    overloaded: bool = False
    retry_after_ms: Optional[float] = None


@dataclass(frozen=True)
class RoutedRequest:
    """Load balancer → replica proxy: the request plus the consistency tag.

    ``start_version`` is the minimum ``V_local`` required before the
    transaction may begin (0 means start immediately).
    """

    request: ClientRequest
    start_version: int


@dataclass(frozen=True)
class TxnResponse:
    """Replica proxy → load balancer: outcome plus version bookkeeping.

    ``replica_version`` is ``V_local`` after the transaction finished — the
    value the proxy "tags its response" with; ``updated_tables`` carries the
    writeset's table set so the balancer can maintain per-table versions.
    """

    request_id: int
    session_id: str
    reply_to: str
    replica: str
    committed: bool
    commit_version: Optional[int]
    abort_reason: Optional[str]
    replica_version: int
    updated_tables: frozenset[str]
    stages: "Any"
    snapshot_version: int = 0
    result: Any = None


@dataclass(frozen=True)
class CertifyRequest:
    """Proxy → certifier: certify an update transaction's writeset.

    ``readset`` is present only in serializable certification mode: the set
    of (table, key) pairs the transaction read, validated against the
    writesets committed since its snapshot (backward validation turns GSI
    into one-copy serializability — Section IV notes TPC-W/TPC-C already
    run serializably under GSI, so this mode is an optional extension).
    """

    txn_id: int
    origin: str
    snapshot_version: int
    writeset: WriteSet
    request_id: int
    readset: Optional[frozenset] = None


@dataclass(frozen=True)
class CertifyReply:
    """Certifier → origin proxy: the decision.

    ``commit_version`` is set iff ``certified``.  ``overloaded`` marks a
    backpressure reject: the certifier's inbound queue exceeded its bound
    and the request was refused *without* being certified — no decision was
    made, so the proxy aborts the transaction locally and the client may
    retry.
    """

    txn_id: int
    request_id: int
    certified: bool
    commit_version: Optional[int]
    conflict_with: Optional[int] = None  # version of the conflicting commit
    overloaded: bool = False
    #: partitioned pipeline only: ``((partition, prev_global_version), ...)``
    #: — for each partition the writeset touches, the global version of that
    #: partition's previous commit.  The origin proxy's sync stage waits for
    #: exactly these predecessors instead of the full global prefix.
    prev_versions: Optional[tuple] = None


@dataclass(frozen=True)
class RefreshWriteset:
    """Certifier → non-origin proxies: a committed transaction's writeset to
    be applied locally as a refresh transaction."""

    commit_version: int
    writeset: WriteSet
    origin: str
    txn_id: int
    #: partitioned pipeline only: per-partition predecessor versions (same
    #: shape as :attr:`CertifyReply.prev_versions`).  A receiving proxy may
    #: apply this refresh as soon as every predecessor has been applied,
    #: even if earlier global versions of *other* partitions are missing.
    prev_versions: Optional[tuple] = None


@dataclass(frozen=True)
class CommitApplied:
    """Proxy → certifier: this replica has committed version
    ``commit_version`` (local or refresh).  Drives the EAGER global-commit
    counters and, in any mode, the certifier's replica-progress tracking."""

    replica: str
    commit_version: int


@dataclass(frozen=True)
class GlobalCommitNotice:
    """Certifier → origin proxy (EAGER only): every replica has committed
    ``commit_version``; the client may now be acknowledged."""

    commit_version: int
    request_id: int


@dataclass(frozen=True)
class RecoveryRequest:
    """Recovering proxy → certifier: replay all decisions after
    ``after_version``."""

    replica: str
    after_version: int


@dataclass(frozen=True)
class RecoveryReply:
    """Certifier → recovering proxy: the missed writesets, ascending.

    ``bootstrap_required=True`` is the machine-readable refusal: the replica
    asked for a replay starting below the truncated decision log's floor, so
    incremental catch-up is impossible.  ``first_replayable`` is the lowest
    version the certifier can still replay — anything older must come from a
    checkpoint (state transfer) instead.
    """

    replica: str
    entries: tuple  # tuple[tuple[int, WriteSet], ...]
    #: partitioned pipeline only: per-entry predecessor vectors, aligned
    #: with ``entries`` (``prevs[i]`` belongs to ``entries[i]``).
    prevs: Optional[tuple] = None
    bootstrap_required: bool = False
    first_replayable: int = 0


# ---------------------------------------------------------------------------
# Self-healing protocol (failure detection, fate resolution, failover)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HeartbeatPing:
    """Monitor → monitored component: are you alive?

    ``payload`` carries monitor-specific piggyback state — the certifier
    puts its ``V_commit`` in pings to replicas so a replica that missed
    refresh writesets (link partition) can detect the gap and ask for a
    recovery replay.
    """

    sender: str
    seq: int
    payload: Any = None


@dataclass(frozen=True)
class HeartbeatAck:
    """Monitored component → monitor: still alive.

    ``payload`` is responder state piggybacked on the ack — replicas report
    their durable version (the certifier re-admits them at it), the primary
    certifier ships a state snapshot to its standby.
    """

    sender: str
    seq: int
    payload: Any = None


@dataclass(frozen=True)
class FateQuery:
    """Load balancer → certifier: what happened to update ``request_id``?

    Sent when an update transaction misses its deadline.  The certifier
    answers from its decision log; if it has no decision it *fences* the
    request id so a late certification cannot commit it afterwards — the
    reply is then a safe, final abort.
    """

    request_id: int
    reply_to: str


@dataclass(frozen=True)
class FateReply:
    """Certifier → load balancer: the resolved fate of an update.

    ``committed`` with ``commit_version`` when the decision log holds the
    commit; otherwise the request is fenced/aborted and may be retried.
    """

    request_id: int
    committed: bool
    commit_version: Optional[int] = None


@dataclass(frozen=True)
class DecisionRecord:
    """Primary certifier → standby: one appended decision-log entry
    (state-machine replication of the certifier)."""

    entry: Any  # durability.LogEntry; Any avoids a circular import
    #: partitioned pipeline only: ``((partition, LogEntry), ...)`` — the
    #: per-shard log entries of one commit (``entry`` is ``None`` then).
    #: The standby appends each to its copy of that shard's log and acks
    #: the commit's global version once all of them are replicated.
    shard_entries: Optional[tuple] = None


@dataclass(frozen=True)
class DecisionAck:
    """Standby → primary certifier: the record is replicated; the decision
    may be released (semi-synchronous log shipping)."""

    commit_version: int


@dataclass(frozen=True)
class CertifierSuspected:
    """Replica proxy → standby certifier: this proxy's heartbeats to the
    primary timed out (``retract=True`` withdraws the vote after the primary
    answers again).  The standby promotes itself on a majority of votes."""

    voter: str
    certifier: str
    retract: bool = False


# ---------------------------------------------------------------------------
# Anti-entropy protocol (scrub, peer row sync, online repair)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DigestRequest:
    """Scrubber → replica proxy: report your per-table state digests.

    The replica answers at its *own* current ``V_local`` (no pinning round
    trip needed — the scrubber's expectation oracle can answer at any
    version).  ``deep=True`` asks for a full-scan recompute, which is what
    catches in-place corruption beneath the incremental bookkeeping.
    """

    reply_to: str
    round_id: int
    deep: bool = True


@dataclass(frozen=True)
class DigestReply:
    """Replica proxy → scrubber: the digest vector, pinned to a version.

    ``aligned=False`` flags that the replica holds out-of-order applies
    above its watermark (partitioned pipeline in flight); its digests then
    include images the watermark cannot vouch for and the scrubber skips
    this reply rather than raise a false alarm.
    """

    replica: str
    round_id: int
    version: int
    digests: Mapping[str, int]
    aligned: bool = True


@dataclass(frozen=True)
class TableSyncRequest:
    """Scrubber → healthy replica proxy: capture the latest row images of
    ``tables`` so ``target`` can be repaired from them."""

    reply_to: str
    target: str
    tables: tuple[str, ...]
    round_id: int


@dataclass(frozen=True)
class TableSyncReply:
    """Healthy replica proxy → scrubber: the captured row images.

    ``rows`` maps table name to a tuple of ``(key, values, commit_version,
    deleted)`` entries (the shape of ``VersionedTable.latest_states``),
    captured atomically at the replica's ``version``.
    """

    replica: str
    target: str
    round_id: int
    version: int
    rows: Mapping[str, tuple]


@dataclass(frozen=True)
class RepairApply:
    """Scrubber → quarantined replica proxy: adopt these row images.

    The replica replaces each named table's state with the peer images
    (captured at the peer's ``synced_version``) and rebuilds its digests;
    re-admission still waits for a clean scrub verification afterwards.
    """

    reply_to: str
    round_id: int
    synced_version: int
    rows: Mapping[str, tuple]


@dataclass(frozen=True)
class RepairAck:
    """Repaired replica proxy → scrubber: the sync is installed.

    ``rows_repaired`` counts keys whose visible state actually differed —
    the magnitude of the divergence that was silently served until now.
    """

    replica: str
    round_id: int
    version: int
    rows_repaired: int


# ---------------------------------------------------------------------------
# Replica lifecycle protocol (bootstrap, catch-up, membership)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CatchUpRequest:
    """Bootstrap coordinator → certifier, on a joiner's behalf: replay all
    decisions after ``after_version`` to ``replica`` *without* re-admitting
    it.  Unlike :class:`RecoveryRequest`, the joiner stays out of the
    membership set and the replication-horizon computation — a replica that
    is still catching up must never pin the horizon.
    """

    replica: str
    after_version: int


@dataclass(frozen=True)
class CheckpointInstall:
    """Bootstrap coordinator → joining replica proxy: adopt this fuzzy
    checkpoint.

    ``rows`` has the shape of :attr:`TableSyncReply.rows` — per-table latest
    row images captured atomically at the donor's ``checkpoint_version``.
    The joiner replaces its table state, jumps its apply watermark to the
    checkpoint version, and replays only decisions above it.
    """

    reply_to: str
    round_id: int
    checkpoint_version: int
    rows: Mapping[str, tuple]


@dataclass(frozen=True)
class CheckpointInstalled:
    """Joining replica proxy → bootstrap coordinator: the checkpoint is
    installed and the replica's version is now ``version``."""

    replica: str
    round_id: int
    version: int


@dataclass(frozen=True)
class BootstrapRequired:
    """Replica proxy → bootstrap coordinator: my recovery replay was refused
    because the decision log no longer reaches back to my version (the
    certifier's refusal carried ``first_replayable``).  The coordinator
    responds by re-bootstrapping the replica from a checkpoint."""

    replica: str
    first_replayable: int


@dataclass(frozen=True)
class StandbyPromoted:
    """New certifier → proxies, balancer, and the old primary: the standby
    has promoted itself as ``certifier`` with failover ``epoch``.  Receivers
    re-point, the old primary (if it ever hears it) halts."""

    certifier: str
    epoch: int
