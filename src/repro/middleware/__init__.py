"""Replication middleware: certifier, replica proxies and load balancer.

The multi-master architecture of Figure 2 in the paper: clients → load
balancer → replica proxies (each fronting a snapshot-isolation storage
engine) → certifier.
"""

from .certifier import Certifier
from .clock import VersionClock
from .context import TxnContext
from .durability import DecisionLog, LogEntry
from .loadbalancer import LoadBalancer
from .messages import (
    CertifyReply,
    CertifyRequest,
    ClientRequest,
    ClientResponse,
    CommitApplied,
    GlobalCommitNotice,
    RecoveryReply,
    RecoveryRequest,
    RefreshWriteset,
    RoutedRequest,
    TxnResponse,
    next_request_id,
)
from .perfmodel import CertifierPerformance, PerformanceParams, ReplicaPerformance
from .proxy import ReplicaProxy

__all__ = [
    "Certifier",
    "CertifierPerformance",
    "CertifyReply",
    "CertifyRequest",
    "ClientRequest",
    "ClientResponse",
    "CommitApplied",
    "DecisionLog",
    "GlobalCommitNotice",
    "LoadBalancer",
    "LogEntry",
    "PerformanceParams",
    "RecoveryReply",
    "RecoveryRequest",
    "RefreshWriteset",
    "ReplicaPerformance",
    "ReplicaProxy",
    "RoutedRequest",
    "TxnContext",
    "TxnResponse",
    "VersionClock",
    "next_request_id",
]
