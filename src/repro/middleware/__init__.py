"""Replication middleware: certifier, replica proxies and load balancer.

The multi-master architecture of Figure 2 in the paper: clients → load
balancer → replica proxies (each fronting a snapshot-isolation storage
engine) → certifier.
"""

from .bootstrap import BootstrapCoordinator, BootstrapSettings
from .certifier import Certifier
from .certindex import CertificationIndex
from .clock import VersionClock
from .context import TxnContext
from .durability import DecisionLog, LogCorruptionError, LogEntry
from .heartbeat import HeartbeatMonitor, HeartbeatSettings
from .loadbalancer import LoadBalancer
from .messages import (
    BootstrapRequired,
    CatchUpRequest,
    CertifierSuspected,
    CheckpointInstall,
    CheckpointInstalled,
    CertifyReply,
    CertifyRequest,
    ClientRequest,
    ClientResponse,
    CommitApplied,
    DecisionAck,
    DecisionRecord,
    FateQuery,
    FateReply,
    GlobalCommitNotice,
    HeartbeatAck,
    HeartbeatPing,
    RecoveryReply,
    RecoveryRequest,
    RefreshWriteset,
    RoutedRequest,
    StandbyPromoted,
    TxnResponse,
    next_request_id,
)
from .perfmodel import CertifierPerformance, PerformanceParams, ReplicaPerformance
from .proxy import ReplicaProxy
from .shards import CertifierShard
from .standby import CertifierStandby

__all__ = [
    "BootstrapCoordinator",
    "BootstrapRequired",
    "BootstrapSettings",
    "CatchUpRequest",
    "CertificationIndex",
    "Certifier",
    "CertifierPerformance",
    "CertifierShard",
    "CertifierStandby",
    "CertifierSuspected",
    "CertifyReply",
    "CertifyRequest",
    "CheckpointInstall",
    "CheckpointInstalled",
    "ClientRequest",
    "ClientResponse",
    "CommitApplied",
    "DecisionAck",
    "DecisionLog",
    "LogCorruptionError",
    "DecisionRecord",
    "FateQuery",
    "FateReply",
    "GlobalCommitNotice",
    "HeartbeatAck",
    "HeartbeatMonitor",
    "HeartbeatPing",
    "HeartbeatSettings",
    "LoadBalancer",
    "LogEntry",
    "PerformanceParams",
    "RecoveryReply",
    "RecoveryRequest",
    "RefreshWriteset",
    "ReplicaPerformance",
    "ReplicaProxy",
    "RoutedRequest",
    "StandbyPromoted",
    "TxnContext",
    "TxnResponse",
    "VersionClock",
    "next_request_id",
]
