"""Deterministic random-number streams.

Every stochastic element of the simulation (service times, think times,
workload choices, network jitter) draws from a *named* stream derived from a
single experiment seed.  This gives two properties the benchmark harness
relies on:

* **Reproducibility** — the same seed replays the same experiment exactly.
* **Stream independence** — adding draws to one component (say, the network)
  does not perturb another component's sequence, so configurations remain
  comparable.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Sequence, TypeVar

__all__ = ["RngRegistry", "Rng"]

T = TypeVar("T")


class Rng:
    """A single named random stream with the distributions the models need."""

    def __init__(self, seed: int, name: str):
        self.name = name
        self._random = random.Random(seed)
        # (mean, cv) -> (mu, sigma): the log/sqrt transform is pure, so
        # caching it changes nothing about the drawn sequence.
        self._lognormal_params: dict[tuple[float, float], tuple[float, float]] = {}

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high)``."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def exponential(self, mean: float) -> float:
        """Exponential variate with the given mean (used for think times)."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean}")
        return self._random.expovariate(1.0 / mean)

    def lognormal_service(self, mean: float, cv: float = 0.25) -> float:
        """Service-time variate: lognormal with given mean and coefficient of
        variation.

        Lognormal keeps service times strictly positive with a realistic
        right tail, which is what produces the slowest-replica penalty the
        eager approach pays.
        """
        params = self._lognormal_params.get((mean, cv))
        if params is None:
            if mean <= 0:
                raise ValueError(f"service mean must be positive, got {mean}")
            sigma2 = math.log(1.0 + cv * cv)
            mu = math.log(mean) - sigma2 / 2.0
            params = (mu, math.sqrt(sigma2))
            self._lognormal_params[(mean, cv)] = params
        return self._random.lognormvariate(*params)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(seq)

    def weighted_choice(self, seq: Sequence[T], weights: Sequence[float]) -> T:
        """Weighted choice from a non-empty sequence."""
        return self._random.choices(seq, weights=weights, k=1)[0]

    def shuffle(self, seq: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self._random.shuffle(seq)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._random.random()

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        """k distinct elements chosen without replacement."""
        return self._random.sample(seq, k)


class RngRegistry:
    """Factory for named, independent :class:`Rng` streams.

    Stream seeds are derived by hashing ``(experiment_seed, stream_name)``,
    so streams are stable across runs and independent of creation order.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, Rng] = {}

    def stream(self, name: str) -> Rng:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            stream_seed = int.from_bytes(digest[:8], "big")
            self._streams[name] = Rng(stream_seed, name)
        return self._streams[name]

    def __contains__(self, name: str) -> bool:
        return name in self._streams
