"""Network model: latency-delayed message delivery between components.

The paper's testbed interconnects all machines with a Gigabit Ethernet
switch; round-trip latencies are sub-millisecond and message sizes are small
(writesets, version tags).  We model the network as a full mesh of
point-to-point links, each applying a base latency plus uniform jitter per
message.  Bandwidth is not modelled — at the paper's message sizes the
propagation term dominates, and the paper's own bottlenecks are CPU-side
(applying refresh writesets), not the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .kernel import Environment
from .resources import Store
from .rng import Rng

__all__ = ["LatencyModel", "Mailbox", "Network"]


@dataclass(frozen=True)
class LatencyModel:
    """One-way message latency: ``base + U(0, jitter)`` milliseconds."""

    base: float = 0.1
    jitter: float = 0.05

    def sample(self, rng: Rng) -> float:
        if self.jitter <= 0:
            return self.base
        return self.base + rng.uniform(0.0, self.jitter)


class Mailbox:
    """A named message endpoint: a FIFO store plus delivery bookkeeping."""

    def __init__(self, env: Environment, name: str):
        self.env = env
        self.name = name
        self._store = Store(env)
        self.delivered_count = 0

    def deliver(self, message: Any) -> None:
        """Place a message in the mailbox (called by the network)."""
        self.delivered_count += 1
        self._store.put(message)

    def receive(self):
        """Event that fires with the next message."""
        return self._store.get()

    def __len__(self) -> int:
        return len(self._store)


@dataclass
class _Partition:
    """Set of endpoint names currently unreachable (for fault injection)."""

    down: set = field(default_factory=set)


class Network:
    """Full-mesh message fabric connecting named endpoints.

    Components register a :class:`Mailbox` under a unique name and send
    messages with :meth:`send`; delivery happens after a sampled latency.
    Endpoints can be taken down (crash-recovery failure model): messages to a
    down endpoint are silently dropped, messages *from* a down endpoint are
    refused at the call site by the component itself.
    """

    def __init__(self, env: Environment, rng: Rng, latency: Optional[LatencyModel] = None):
        self.env = env
        self.rng = rng
        self.latency = latency or LatencyModel()
        self._mailboxes: dict[str, Mailbox] = {}
        self._partition = _Partition()
        self.sent_count = 0
        self.dropped_count = 0
        self._taps: list[Callable[[str, str, Any], None]] = []

    # -- endpoints ---------------------------------------------------------
    def register(self, name: str) -> Mailbox:
        """Create and return the mailbox for endpoint ``name``."""
        if name in self._mailboxes:
            raise ValueError(f"endpoint {name!r} already registered")
        mailbox = Mailbox(self.env, name)
        self._mailboxes[name] = mailbox
        return mailbox

    def mailbox(self, name: str) -> Mailbox:
        """Look up an existing endpoint's mailbox."""
        return self._mailboxes[name]

    # -- fault injection -----------------------------------------------------
    def take_down(self, name: str) -> None:
        """Mark an endpoint as crashed: its inbound messages are dropped."""
        self._partition.down.add(name)

    def bring_up(self, name: str) -> None:
        """Mark a crashed endpoint as recovered."""
        self._partition.down.discard(name)

    def is_down(self, name: str) -> bool:
        return name in self._partition.down

    # -- observation ---------------------------------------------------------
    def add_tap(self, tap: Callable[[str, str, Any], None]) -> None:
        """Register an observer called as ``tap(sender, recipient, message)``
        for every message handed to :meth:`send` (useful in tests)."""
        self._taps.append(tap)

    # -- transmission ---------------------------------------------------------
    def send(self, sender: str, recipient: str, message: Any) -> None:
        """Send ``message`` to ``recipient``; delivery after sampled latency.

        Messages to a crashed endpoint are dropped (the sender learns of the
        failure through timeouts at a higher layer, as in the crash-recovery
        model the paper assumes).
        """
        if recipient not in self._mailboxes:
            raise KeyError(f"unknown endpoint {recipient!r}")
        for tap in self._taps:
            tap(sender, recipient, message)
        self.sent_count += 1
        if recipient in self._partition.down:
            self.dropped_count += 1
            return
        delay = self.latency.sample(self.rng)
        mailbox = self._mailboxes[recipient]

        def _deliver(_event, mailbox=mailbox, message=message, recipient=recipient):
            # Re-check at delivery time: the endpoint may have crashed while
            # the message was in flight.
            if recipient in self._partition.down:
                self.dropped_count += 1
                return
            mailbox.deliver(message)

        timer = self.env.timeout(delay)
        timer.callbacks.append(_deliver)
