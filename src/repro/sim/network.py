"""Network model: latency-delayed message delivery between components.

The paper's testbed interconnects all machines with a Gigabit Ethernet
switch; round-trip latencies are sub-millisecond and message sizes are small
(writesets, version tags).  We model the network as a full mesh of
point-to-point links, each applying a base latency plus uniform jitter per
message.  Bandwidth is not modelled — at the paper's message sizes the
propagation term dominates, and the paper's own bottlenecks are CPU-side
(applying refresh writesets), not the wire.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .kernel import Environment, Event, _TRIGGERED
from .resources import Store
from .rng import Rng

__all__ = ["LatencyModel", "Mailbox", "Network"]


class _Delivery(Event):
    """A pooled in-flight message: one scheduled event per send.

    Replaces the per-message ``Timeout`` plus delivery closure: the event
    carries (sender, recipient, message) in slots and dispatches through one
    persistent single-element callback list bound to the owning network.
    After delivery the event is reset and returned to the network's free
    list, so steady-state message traffic allocates no kernel objects.
    """

    __slots__ = ("sender", "recipient", "message", "_cblist")

    def __init__(self, network: "Network"):
        super().__init__(network.env)
        self.sender = ""
        self.recipient = ""
        self.message: Any = None
        self._cblist = [network._deliver]
        self.callbacks = self._cblist


@dataclass(frozen=True)
class LatencyModel:
    """One-way message latency: ``base + U(0, jitter)`` milliseconds."""

    base: float = 0.1
    jitter: float = 0.05

    def sample(self, rng: Rng) -> float:
        if self.jitter <= 0:
            return self.base
        return self.base + rng.uniform(0.0, self.jitter)


class Mailbox:
    """A named message endpoint: a FIFO store plus delivery bookkeeping."""

    def __init__(self, env: Environment, name: str):
        self.env = env
        self.name = name
        self._store = Store(env)
        self.delivered_count = 0

    def deliver(self, message: Any) -> None:
        """Place a message in the mailbox (called by the network)."""
        self.delivered_count += 1
        self._store.put(message)

    def receive(self):
        """Event that fires with the next message."""
        return self._store.get()

    def __len__(self) -> int:
        return len(self._store)


@dataclass
class _Partition:
    """Endpoints currently crashed, plus directed links currently cut."""

    down: set = field(default_factory=set)
    #: directed links ``(sender, recipient)`` whose messages are dropped
    links: set = field(default_factory=set)


class Network:
    """Full-mesh message fabric connecting named endpoints.

    Components register a :class:`Mailbox` under a unique name and send
    messages with :meth:`send`; delivery happens after a sampled latency.
    Two fault models compose:

    * **endpoint down** (crash-recovery): inbound messages to a down
      endpoint are dropped; messages *from* a down endpoint are refused at
      the call site by the component itself.
    * **link partition**: a directed link ``sender → recipient`` can be cut
      independently of the reverse direction (asymmetric partitions);
      messages on a cut link are dropped, including messages already in
      flight when the link is cut.

    In both cases senders learn of the failure only through timeouts at a
    higher layer, as in the failure model the paper assumes.
    """

    def __init__(
        self,
        env: Environment,
        rng: Rng,
        latency: Optional[LatencyModel] = None,
        duplicate_prob: float = 0.0,
        reorder_prob: float = 0.0,
        fault_rng: Optional[Rng] = None,
    ):
        if not 0.0 <= duplicate_prob <= 1.0:
            raise ValueError("duplicate_prob must be in [0, 1]")
        if not 0.0 <= reorder_prob <= 1.0:
            raise ValueError("reorder_prob must be in [0, 1]")
        self.env = env
        self.rng = rng
        self.latency = latency or LatencyModel()
        self._mailboxes: dict[str, Mailbox] = {}
        self._partition = _Partition()
        self.sent_count = 0
        self.dropped_count = 0
        #: drops broken down by cause: "endpoint-down" (recipient crashed),
        #: "link-cut" (directed partition), "overload-shed" (admission
        #: control refused the request before it entered the system)
        self.dropped_by_reason: dict[str, int] = {}
        #: seeded delivery faults (both default off, drawing zero random
        #: numbers then): probability a message is delivered twice, and
        #: probability it is held back so later sends overtake it
        self.duplicate_prob = duplicate_prob
        self.reorder_prob = reorder_prob
        #: dedicated stream for the fault draws (falls back to the latency
        #: rng) so enabling faults perturbs latency sampling minimally
        self.fault_rng = fault_rng
        self.injected_count = 0
        #: injected delivery faults by kind ("duplicate", "reorder") —
        #: mirrors ``dropped_by_reason`` so audits read one breakdown shape
        self.injected_by_reason: dict[str, int] = {}
        self._taps: list[Callable[[str, str, Any], None]] = []
        #: recycled in-flight delivery events (see :class:`_Delivery`)
        self._delivery_pool: list[_Delivery] = []

    # -- endpoints ---------------------------------------------------------
    def register(self, name: str) -> Mailbox:
        """Create and return the mailbox for endpoint ``name``."""
        if name in self._mailboxes:
            raise ValueError(f"endpoint {name!r} already registered")
        mailbox = Mailbox(self.env, name)
        self._mailboxes[name] = mailbox
        return mailbox

    def mailbox(self, name: str) -> Mailbox:
        """Look up an existing endpoint's mailbox."""
        return self._mailboxes[name]

    # -- fault injection -----------------------------------------------------
    def take_down(self, name: str) -> None:
        """Mark an endpoint as crashed: its inbound messages are dropped."""
        self._partition.down.add(name)

    def bring_up(self, name: str) -> None:
        """Mark a crashed endpoint as recovered."""
        self._partition.down.discard(name)

    def is_down(self, name: str) -> bool:
        return name in self._partition.down

    def partition_link(self, sender: str, recipient: str, symmetric: bool = False) -> None:
        """Cut the directed link ``sender → recipient`` (and the reverse
        direction too when ``symmetric``)."""
        self._partition.links.add((sender, recipient))
        if symmetric:
            self._partition.links.add((recipient, sender))

    def heal_link(self, sender: str, recipient: str, symmetric: bool = False) -> None:
        """Restore a previously cut link."""
        self._partition.links.discard((sender, recipient))
        if symmetric:
            self._partition.links.discard((recipient, sender))

    def heal_all_links(self) -> None:
        """Restore every cut link."""
        self._partition.links.clear()

    def is_link_partitioned(self, sender: str, recipient: str) -> bool:
        return (sender, recipient) in self._partition.links

    @property
    def partitioned_links(self) -> frozenset:
        """Snapshot of the currently cut directed links."""
        return frozenset(self._partition.links)

    # -- observation ---------------------------------------------------------
    def add_tap(self, tap: Callable[[str, str, Any], None]) -> None:
        """Register an observer called as ``tap(sender, recipient, message)``
        for every message handed to :meth:`send` (useful in tests)."""
        self._taps.append(tap)

    def record_drop(self, reason: str) -> None:
        """Account one dropped message under ``reason``.

        Used internally for partition/crash drops and by higher layers that
        kill a request before it travels (the balancer's overload shedding),
        so audits can assert *why* messages died from one counter."""
        self.dropped_count += 1
        self.dropped_by_reason[reason] = self.dropped_by_reason.get(reason, 0) + 1

    def record_injection(self, reason: str) -> None:
        """Account one injected delivery fault under ``reason``."""
        self.injected_count += 1
        self.injected_by_reason[reason] = self.injected_by_reason.get(reason, 0) + 1

    # -- transmission ---------------------------------------------------------
    def send(self, sender: str, recipient: str, message: Any) -> None:
        """Send ``message`` to ``recipient``; delivery after sampled latency.

        Messages to a crashed endpoint are dropped (the sender learns of the
        failure through timeouts at a higher layer, as in the crash-recovery
        model the paper assumes).
        """
        if recipient not in self._mailboxes:
            raise KeyError(f"unknown endpoint {recipient!r}")
        for tap in self._taps:
            tap(sender, recipient, message)
        self.sent_count += 1
        if recipient in self._partition.down:
            self.record_drop("endpoint-down")
            return
        if (sender, recipient) in self._partition.links:
            self.record_drop("link-cut")
            return
        delay = self.latency.sample(self.rng)
        if self.duplicate_prob > 0.0 or self.reorder_prob > 0.0:
            delay = self._inject_delivery_faults(sender, recipient, message, delay)
        self._schedule_delivery(sender, recipient, message, delay)

    def _inject_delivery_faults(
        self, sender: str, recipient: str, message: Any, delay: float
    ) -> float:
        """Seeded delivery faults: maybe schedule a duplicate copy, maybe
        hold the original back so later sends overtake it.  Draws happen
        only for enabled faults — with both knobs at 0 this method is never
        reached and the delivery schedule is untouched."""
        rng = self.fault_rng if self.fault_rng is not None else self.rng
        if self.duplicate_prob > 0.0 and rng.random() < self.duplicate_prob:
            self.record_injection("duplicate")
            # The copy takes its own (longer) path: original delay plus a
            # fresh latency sample, so both copies arrive.
            self._schedule_delivery(
                sender, recipient, message, delay + self.latency.sample(rng)
            )
        if self.reorder_prob > 0.0 and rng.random() < self.reorder_prob:
            self.record_injection("reorder")
            # Hold the message back several latencies: messages sent after
            # it will (with high probability) be delivered before it.
            delay += 3.0 * (self.latency.base + self.latency.jitter)
        return delay

    def _schedule_delivery(
        self, sender: str, recipient: str, message: Any, delay: float
    ) -> None:
        pool = self._delivery_pool
        event = pool.pop() if pool else _Delivery(self)
        event.sender = sender
        event.recipient = recipient
        event.message = message
        event._state = _TRIGGERED
        # Inlined Environment._schedule (latency is almost always > 0).
        env = self.env
        if delay == 0.0:
            env._immediate.append((env._now, next(env._event_counter), event))
            env.immediate_scheduled += 1
        else:
            heapq.heappush(
                env._queue, (env._now + delay, next(env._event_counter), event)
            )

    def _deliver(self, event: _Delivery) -> None:
        """Delivery-time dispatch for an in-flight message event."""
        sender, recipient, message = event.sender, event.recipient, event.message
        # Reset and recycle before dispatching: the mailbox hand-off may
        # synchronously trigger another send that can then reuse the event.
        event.message = None
        event.callbacks = event._cblist
        self._delivery_pool.append(event)
        # Re-check at delivery time: the endpoint may have crashed, or the
        # link been cut, while the message was in flight.
        if recipient in self._partition.down:
            self.record_drop("endpoint-down")
            return
        if (sender, recipient) in self._partition.links:
            self.record_drop("link-cut")
            return
        self._mailboxes[recipient].deliver(message)
