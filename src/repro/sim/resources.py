"""Shared resources for simulation processes.

Two primitives cover everything the replicated database prototype needs:

* :class:`Resource` — a server with fixed capacity and a FIFO queue, used to
  model replica CPUs, disks and the certifier's processing capacity.
* :class:`Store` — an unbounded FIFO buffer of items, used for message
  mailboxes and the proxies' refresh-writeset queues.

Both integrate with the kernel through events: ``request()``/``get()`` return
events that a process yields.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from .kernel import Environment, Event, SimulationError, Timeout, _TRIGGERED

__all__ = ["Request", "Resource", "Store"]


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Fires when the slot is granted.  Must be released with
    :meth:`Resource.release` (or used via ``with``-style helpers in client
    code).  Cancelling a not-yet-granted request removes it from the queue.
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        # Flattened Event.__init__: one request per resource claim makes
        # this one of the hottest allocation sites in the simulation.
        self.env = resource.env
        self.callbacks = []
        self._value = None
        self._ok = True
        self._state = 0  # _PENDING
        self.resource = resource


class Resource:
    """A server with ``capacity`` identical slots and a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: set[Request] = set()
        self._waiting: Deque[Request] = deque()
        # Busy-time integral (slot-milliseconds) for utilization reporting.
        self._busy_slot_ms = 0.0
        self._last_change = env.now

    def _account(self) -> None:
        now = self.env._now
        if now != self._last_change:
            self._busy_slot_ms += len(self._users) * (now - self._last_change)
            self._last_change = now

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return len(self._users)

    @property
    def busy_slot_ms(self) -> float:
        """Cumulative busy time across slots (slot-milliseconds)."""
        self._account()
        return self._busy_slot_ms

    def utilization(self, since_ms: float = 0.0) -> float:
        """Average fraction of capacity busy since ``since_ms``.

        Only exact when the resource was idle at ``since_ms`` = 0; for
        experiment windows, diff :attr:`busy_slot_ms` snapshots instead.
        """
        elapsed = self.env.now - since_ms
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_slot_ms / (self.capacity * elapsed))

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Claim a slot; the returned event fires when the slot is granted."""
        req = Request(self)
        if len(self._users) < self.capacity:
            self._account()
            self._users.add(req)
            # Inlined req.succeed() for the uncontended grant (hot path).
            req._state = _TRIGGERED
            env = self.env
            env._immediate.append((env._now, next(env._event_counter), req))
            env.immediate_scheduled += 1
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot."""
        if request in self._users:
            self._account()
            self._users.remove(request)
            self._grant_next()
        else:
            self.cancel(request)

    def cancel(self, request: Request) -> None:
        """Withdraw a request that has not been granted."""
        try:
            self._waiting.remove(request)
        except ValueError:
            pass

    def _grant_next(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            req = self._waiting.popleft()
            if req.triggered:  # defensive: skip stale entries
                continue
            self._account()
            self._users.add(req)
            req.succeed()

    def use(self, duration: float):
        """Process helper: hold one slot for ``duration`` ms.

        Usage inside a process::

            yield from resource.use(service_time)

        Interrupt-safe: whether the interrupt lands while waiting for the
        slot or while holding it, the request is withdrawn/released.
        """
        req = self.request()
        try:
            yield req
            yield Timeout(self.env, duration)
        finally:
            self.release(req)


class Store:
    """An unbounded FIFO buffer with blocking ``get``.

    ``put`` never blocks (the prototype's queues are unbounded, like the
    paper's refresh queues); ``get`` returns an event that fires once an item
    is available, preserving FIFO order among getters.
    """

    def __init__(self, env: Environment):
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of buffered items (for inspection/tests)."""
        return tuple(self._items)

    def put(self, item: Any) -> None:
        """Add ``item``; wakes the oldest waiting getter, if any."""
        while self._getters:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            getter.succeed(item)
            return
        self._items.append(item)

    def get(self) -> Event:
        """An event that fires with the next item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def peek_all(self) -> list:
        """Non-destructive view of all buffered items."""
        return list(self._items)
