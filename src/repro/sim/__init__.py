"""Discrete-event simulation substrate.

The virtual cluster the replicated database runs on: event kernel, shared
resources (CPUs, queues), network fabric and deterministic random streams.
"""

from .kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    StopProcess,
    Timeout,
)
from .network import LatencyModel, Mailbox, Network
from .resources import Request, Resource, Store
from .rng import Rng, RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "LatencyModel",
    "Mailbox",
    "Network",
    "Process",
    "Request",
    "Resource",
    "Rng",
    "RngRegistry",
    "SimulationError",
    "StopProcess",
    "Store",
    "Timeout",
]
