"""Discrete-event simulation kernel.

This module provides the virtual-time substrate on which the replicated
database prototype runs.  The paper evaluated its prototype on a physical
cluster; we reproduce the cluster with a deterministic discrete-event
simulator so the throughput/latency experiments run on a laptop while
preserving the queueing behaviour that drives the paper's results (see
DESIGN.md, substitution table).

The design follows the classic process-interaction style (as popularised by
SimPy, reimplemented here from scratch):

* An :class:`Environment` owns the virtual clock and the event queue.
* An :class:`Event` is a one-shot occurrence; callbacks run when it fires.
* A :class:`Process` wraps a Python generator.  The generator *yields*
  events; the process resumes when the yielded event fires.
* :class:`Timeout` is an event that fires after a virtual delay.

Time is a ``float`` in **milliseconds** throughout the library, matching the
units the paper reports.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
    "StopProcess",
    "AllOf",
    "AnyOf",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class StopProcess(Exception):
    """Raised inside a process generator to terminate it with a value.

    ``return value`` inside the generator is the idiomatic way to finish; this
    exception exists for code that must stop from a helper function.
    """

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event states
_PENDING = 0
_TRIGGERED = 1  # scheduled, value set, callbacks not yet run
_PROCESSED = 2  # callbacks have run


class Event:
    """A one-shot occurrence in virtual time.

    An event starts *pending*.  Calling :meth:`succeed` or :meth:`fail`
    schedules it; the environment then invokes its callbacks at the current
    virtual time.  Processes wait on events by yielding them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_state")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state = _PENDING

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled (value decided)."""
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception when it failed)."""
        if self._state == _PENDING:
            raise SimulationError("event value is not available yet")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Schedule the event to fire successfully with ``value``."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule the event to fire with an exception."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = _TRIGGERED
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (chaining)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- internal --------------------------------------------------------
    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._state = _PROCESSED
        if callbacks:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} at {id(self):#x} state={self._state}>"


class Timeout(Event):
    """An event that fires after ``delay`` units of virtual time."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        env._schedule(self, delay=delay)


class Process(Event):
    """A process: a generator driven by the events it yields.

    The process itself is an event that fires when the generator finishes,
    with the generator's return value.  Other processes may therefore wait
    for a process by yielding it.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick the process off via an initialisation event.
        init = Event(env)
        init.callbacks.append(self._resume)
        init.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        wakeup = Event(self.env)
        wakeup.callbacks.append(self._resume_interrupt(cause))
        wakeup.succeed()

    def _resume_interrupt(self, cause: Any) -> Callable[[Event], None]:
        def callback(_event: Event) -> None:
            if not self.is_alive:  # finished in the meantime
                return
            self._step(Interrupt(cause), throw=True)

        return callback

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event._ok:
            self._step(event._value, throw=False)
        else:
            self._step(event._value, throw=True)

    def _step(self, value: Any, throw: bool) -> None:
        self.env._active_process = self
        try:
            if throw:
                target = self._generator.throw(value)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except StopProcess as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return
        finally:
            self.env._active_process = None

        if not isinstance(target, Event):
            message = (
                f"process {self.name!r} yielded {target!r}; "
                "processes may only yield Event instances"
            )
            self._generator.close()
            self.fail(SimulationError(message))
            return
        if target.env is not self.env:
            self._generator.close()
            self.fail(SimulationError("yielded event belongs to another environment"))
            return
        if target.callbacks is None:
            # Already processed: resume immediately with its value.
            immediate = Event(self.env)
            immediate.callbacks.append(self._resume)
            immediate.trigger(target)
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        for event in self._events:
            if event.env is not env:
                raise SimulationError("condition mixes events from different environments")
        self._remaining = len(self._events)
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self, extra: Optional[Event] = None) -> dict[Event, Any]:
        # Only events whose callbacks already ran have truly *fired*;
        # Timeout events are born scheduled (triggered) but have not
        # occurred until processed.  ``extra`` is the event whose firing is
        # being handled right now (its processed flag flips afterwards).
        return {
            event: event._value
            for event in self._events
            if event._ok and (event._state == _PROCESSED or event is extra)
        }


class AllOf(_Condition):
    """Fires when all constituent events have fired.

    The value is a dict mapping each event to its value.  If any constituent
    fails, the condition fails with that exception.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect(extra=event))


class AnyOf(_Condition):
    """Fires as soon as any constituent event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed(self._collect(extra=event))


class Environment:
    """The simulation environment: virtual clock plus event queue.

    Typical use::

        env = Environment()

        def worker(env):
            yield env.timeout(5.0)
            return "done"

        proc = env.process(worker(env))
        env.run()
        assert env.now == 5.0 and proc.value == "done"
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._event_counter = itertools.count()
        self._active_process: Optional[Process] = None

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- factories -------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` ms from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any], name: str = "") -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(
            self._queue, (self._now + delay, next(self._event_counter), event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event, advancing the clock."""
        if not self._queue:
            raise SimulationError("no scheduled events to step")
        when, _tie, event = heapq.heappop(self._queue)
        self._now = when
        event._run_callbacks()

    def run(self, until: Optional[float] = None) -> None:
        """Run until no events remain, or until virtual time ``until``.

        When ``until`` is given the clock is left exactly at ``until`` even
        if the next event lies beyond it.
        """
        if until is not None:
            if until < self._now:
                raise SimulationError(
                    f"cannot run until {until}; clock is already at {self._now}"
                )
            while self._queue and self._queue[0][0] <= until:
                self.step()
            self._now = float(until)
        else:
            while self._queue:
                self.step()

    def run_until_event(self, event: Event, limit: float = float("inf")) -> Any:
        """Run until ``event`` fires; return its value (raise on failure).

        Used by the synchronous client facade: schedule a request, then drive
        the simulation until the response event fires.  ``limit`` bounds the
        virtual time spent waiting.
        """
        while not event.triggered or not event.processed:
            if not self._queue:
                raise SimulationError("event will never fire: queue is empty")
            if self._queue[0][0] > limit:
                raise SimulationError(f"event did not fire before t={limit}")
            self.step()
        if not event.ok:
            raise event.value
        return event.value
