"""Discrete-event simulation kernel.

This module provides the virtual-time substrate on which the replicated
database prototype runs.  The paper evaluated its prototype on a physical
cluster; we reproduce the cluster with a deterministic discrete-event
simulator so the throughput/latency experiments run on a laptop while
preserving the queueing behaviour that drives the paper's results (see
DESIGN.md, substitution table).

The design follows the classic process-interaction style (as popularised by
SimPy, reimplemented here from scratch):

* An :class:`Environment` owns the virtual clock and the event queue.
* An :class:`Event` is a one-shot occurrence; callbacks run when it fires.
* A :class:`Process` wraps a Python generator.  The generator *yields*
  events; the process resumes when the yielded event fires.
* :class:`Timeout` is an event that fires after a virtual delay.

Time is a ``float`` in **milliseconds** throughout the library, matching the
units the paper reports.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
    "StopProcess",
    "AllOf",
    "AnyOf",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class StopProcess(Exception):
    """Raised inside a process generator to terminate it with a value.

    ``return value`` inside the generator is the idiomatic way to finish; this
    exception exists for code that must stop from a helper function.
    """

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event states
_PENDING = 0
_TRIGGERED = 1  # scheduled, value set, callbacks not yet run
_PROCESSED = 2  # callbacks have run


class Event:
    """A one-shot occurrence in virtual time.

    An event starts *pending*.  Calling :meth:`succeed` or :meth:`fail`
    schedules it; the environment then invokes its callbacks at the current
    virtual time.  Processes wait on events by yielding them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_state")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state = _PENDING

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled (value decided)."""
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception when it failed)."""
        if self._state == _PENDING:
            raise SimulationError("event value is not available yet")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Schedule the event to fire successfully with ``value``."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        # Inlined zero-delay _schedule: succeed() is the hottest trigger.
        env = self.env
        env._immediate.append((env._now, next(env._event_counter), self))
        env.immediate_scheduled += 1
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule the event to fire with an exception."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = _TRIGGERED
        env = self.env
        env._immediate.append((env._now, next(env._event_counter), self))
        env.immediate_scheduled += 1
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (chaining)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- internal --------------------------------------------------------
    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._state = _PROCESSED
        if callbacks:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} at {id(self):#x} state={self._state}>"


class Timeout(Event):
    """An event that fires after ``delay`` units of virtual time."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        # Flattened Event.__init__ + _schedule: timeouts are created for
        # every service-time charge, so each saved call is paid back 10^5
        # times per run.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._state = _TRIGGERED
        self.delay = delay
        if delay == 0.0:
            env._immediate.append((env._now, next(env._event_counter), self))
            env.immediate_scheduled += 1
        else:
            heapq.heappush(
                env._queue, (env._now + delay, next(env._event_counter), self)
            )


class Process(Event):
    """A process: a generator driven by the events it yields.

    The process itself is an event that fires when the generator finishes,
    with the generator's return value.  Other processes may therefore wait
    for a process by yielding it.
    """

    __slots__ = ("_generator", "_send", "_throw", "_waiting_on", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self._generator = generator
        self._send = generator.send
        self._throw = generator.throw
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick the process off via a (pooled) initialisation event.
        env._wakeup(self._resume).succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        self.env._wakeup(self._resume_interrupt(cause)).succeed()

    def _resume_interrupt(self, cause: Any) -> Callable[[Event], None]:
        def callback(_event: Event) -> None:
            if not self.is_alive:  # finished in the meantime
                return
            self._step(Interrupt(cause), throw=True)

        return callback

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        self._step(event._value, throw=not event._ok)

    def _step(self, value: Any, throw: bool) -> None:
        self.env._active_process = self
        try:
            if throw:
                target = self._throw(value)
            else:
                target = self._send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except StopProcess as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return
        finally:
            self.env._active_process = None

        if not isinstance(target, Event):
            message = (
                f"process {self.name!r} yielded {target!r}; "
                "processes may only yield Event instances"
            )
            self._generator.close()
            self.fail(SimulationError(message))
            return
        if target.env is not self.env:
            self._generator.close()
            self.fail(SimulationError("yielded event belongs to another environment"))
            return
        if target.callbacks is None:
            # Already processed: resume immediately with its value.
            self.env._wakeup(self._resume).trigger(target)
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        for event in self._events:
            if event.env is not env:
                raise SimulationError("condition mixes events from different environments")
        self._remaining = len(self._events)
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self, extra: Optional[Event] = None) -> dict[Event, Any]:
        # Only events whose callbacks already ran have truly *fired*;
        # Timeout events are born scheduled (triggered) but have not
        # occurred until processed.  ``extra`` is the event whose firing is
        # being handled right now (its processed flag flips afterwards).
        return {
            event: event._value
            for event in self._events
            if event._ok and (event._state == _PROCESSED or event is extra)
        }


class AllOf(_Condition):
    """Fires when all constituent events have fired.

    The value is a dict mapping each event to its value.  If any constituent
    fails, the condition fails with that exception.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect(extra=event))


class AnyOf(_Condition):
    """Fires as soon as any constituent event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed(self._collect(extra=event))


class _Wakeup(Event):
    """A pooled single-callback event used for internal process wakeups.

    These events (process kick-off, immediate resume on an already-processed
    target, interrupt delivery) are created by the kernel itself, carry
    exactly one callback, and are referenced by nothing once their callback
    has run — so :class:`Environment` recycles them through a free list
    instead of allocating a fresh :class:`Event` per wakeup.
    """

    __slots__ = ()


class Environment:
    """The simulation environment: virtual clock plus event queue.

    Typical use::

        env = Environment()

        def worker(env):
            yield env.timeout(5.0)
            return "done"

        proc = env.process(worker(env))
        env.run()
        assert env.now == 5.0 and proc.value == "done"

    Two queues back the clock: a heap for events scheduled with a positive
    delay and a FIFO for zero-delay events.  Zero-delay scheduling (every
    ``succeed``/``fail``, store hand-offs, resource grants) dominates event
    traffic, and because the tie-break counter is monotonic the FIFO is
    always sorted by ``(time, counter)`` — so popping the smaller of the two
    heads reproduces the pure-heap firing order exactly while replacing most
    O(log n) heap traffic with O(1) appends.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        #: zero-delay events, already sorted by (time, counter) by
        #: construction; popped in merge order with the heap
        self._immediate: deque[tuple[float, int, Event]] = deque()
        self._event_counter = itertools.count()
        self._active_process: Optional[Process] = None
        #: recycled internal wakeup events (see :class:`_Wakeup`)
        self._wakeup_pool: list[_Wakeup] = []
        #: events processed by :meth:`step` (profiler events/sec)
        self.events_processed = 0
        #: zero-delay schedules that took the FIFO fast path
        self.immediate_scheduled = 0

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    def metrics(self) -> dict:
        """Kernel counters for the cluster's metrics registry
        (``kernel.events_processed``, ``kernel.immediate_scheduled``, …)."""
        return {
            "now_ms": self._now,
            "events_processed": self.events_processed,
            "immediate_scheduled": self.immediate_scheduled,
            "queue_depth": len(self._queue) + len(self._immediate),
        }

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- factories -------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` ms from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any], name: str = "") -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay == 0.0:
            self._immediate.append((self._now, next(self._event_counter), event))
            self.immediate_scheduled += 1
        else:
            heapq.heappush(
                self._queue, (self._now + delay, next(self._event_counter), event)
            )

    def _wakeup(self, callback: Callable[[Event], None]) -> _Wakeup:
        """A pooled pending single-callback event (kernel internal)."""
        pool = self._wakeup_pool
        if pool:
            event = pool.pop()
            event._state = _PENDING
            event._ok = True
            event._value = None
            event.callbacks = [callback]
        else:
            event = _Wakeup(self)
            event.callbacks.append(callback)
        return event

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._immediate:
            when = self._immediate[0][0]
            if self._queue and self._queue[0][0] < when:
                return self._queue[0][0]
            return when
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event, advancing the clock."""
        immediate = self._immediate
        queue = self._queue
        # Merge-pop: the FIFO is sorted by (time, counter), so comparing the
        # two heads preserves the exact global firing order.  Counters are
        # unique, so the tuple comparison never reaches the Event element.
        if immediate:
            if queue and queue[0] < immediate[0]:
                when, _tie, event = heapq.heappop(queue)
            else:
                when, _tie, event = immediate.popleft()
        elif queue:
            when, _tie, event = heapq.heappop(queue)
        else:
            raise SimulationError("no scheduled events to step")
        self._now = when
        self.events_processed += 1
        # Inlined _run_callbacks with a single-callback fast path: almost
        # every event carries exactly one callback (a process resume).
        callbacks = event.callbacks
        event.callbacks = None
        event._state = _PROCESSED
        if callbacks:
            if len(callbacks) == 1:
                callbacks[0](event)
            else:
                for callback in callbacks:
                    callback(event)
        if type(event) is _Wakeup:
            self._wakeup_pool.append(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until no events remain, or until virtual time ``until``.

        When ``until`` is given the clock is left exactly at ``until`` even
        if the next event lies beyond it.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until {until}; clock is already at {self._now}"
            )
        # Inlined merge-pop loop: one bound check and one dispatch per
        # event, no per-event step()/peek() calls.  FIFO entries are always
        # scheduled at the current clock, so only heap heads can exceed the
        # bound.  Trace-equivalent to calling step() in a loop.
        bound = float("inf") if until is None else float(until)
        immediate = self._immediate
        queue = self._queue
        pool = self._wakeup_pool
        heappop = heapq.heappop
        processed = 0
        try:
            while True:
                if immediate:
                    if queue and queue[0] < immediate[0]:
                        if queue[0][0] > bound:
                            break
                        when, _tie, event = heappop(queue)
                    else:
                        when, _tie, event = immediate.popleft()
                elif queue:
                    if queue[0][0] > bound:
                        break
                    when, _tie, event = heappop(queue)
                else:
                    break
                self._now = when
                processed += 1
                callbacks = event.callbacks
                event.callbacks = None
                event._state = _PROCESSED
                if callbacks:
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                if type(event) is _Wakeup:
                    pool.append(event)
        finally:
            self.events_processed += processed
        if until is not None:
            self._now = float(until)

    def run_until_event(self, event: Event, limit: float = float("inf")) -> Any:
        """Run until ``event`` fires; return its value (raise on failure).

        Used by the synchronous client facade: schedule a request, then drive
        the simulation until the response event fires.  ``limit`` bounds the
        virtual time spent waiting.
        """
        while not event.triggered or not event.processed:
            if not (self._immediate or self._queue):
                raise SimulationError("event will never fire: queue is empty")
            if self.peek() > limit:
                raise SimulationError(f"event did not fire before t={limit}")
            self.step()
        if not event.ok:
            raise event.value
        return event.value
