"""Transaction objects: snapshot, buffered writes, lifecycle state.

A transaction reads from the snapshot fixed at begin time and buffers its own
writes (read-your-own-writes).  The buffered writes become the transaction's
:class:`~repro.storage.writeset.WriteSet` at commit time — the artifact the
certifier certifies and the middleware propagates.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Mapping, Optional

from .errors import TransactionStateError
from .writeset import OpKind, WriteOp, WriteSet

__all__ = ["TxnState", "Transaction"]

_txn_ids = itertools.count(1)


class TxnState(enum.Enum):
    """Transaction lifecycle."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One client transaction executing against a snapshot.

    Created by :meth:`StorageEngine.begin`.  Not thread-safe; the simulation
    is single-threaded by construction.
    """

    def __init__(self, snapshot_version: int, txn_id: Optional[int] = None):
        self.txn_id = txn_id if txn_id is not None else next(_txn_ids)
        self.snapshot_version = snapshot_version
        self.state = TxnState.ACTIVE
        self.commit_version: Optional[int] = None
        self.abort_reason: Optional[str] = None
        # (table, key) -> buffered WriteOp; insertion order preserved.
        self._writes: dict[tuple[str, Any], WriteOp] = {}
        # Writeset materialised from _writes, invalidated on every write.
        self._writeset_cache: Optional[WriteSet] = None
        # (table, key) pairs read, for history recording / analysis.
        self.read_keys: set[tuple[str, Any]] = set()

    # -- state guards ------------------------------------------------------
    @property
    def is_active(self) -> bool:
        return self.state is TxnState.ACTIVE

    @property
    def is_read_only(self) -> bool:
        """True while no writes have been buffered."""
        return not self._writes

    def _require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionStateError(
                f"transaction {self.txn_id} is {self.state.value}, not active"
            )

    # -- write buffering ---------------------------------------------------
    def buffer_write(self, op: WriteOp) -> None:
        """Record a write; later writes to the same row compose naturally.

        Composition rules (all resolved here so the final writeset holds at
        most one op per row):

        * INSERT then UPDATE  -> INSERT with the updated image
        * INSERT then DELETE  -> the pair cancels; the row was never visible
        * UPDATE then DELETE  -> DELETE
        * DELETE then INSERT  -> UPDATE (the row existed before the txn)
        """
        self._require_active()
        self._writeset_cache = None
        slot = (op.table, op.key)
        previous = self._writes.get(slot)
        if previous is None:
            self._writes[slot] = op
            return
        if previous.kind is OpKind.INSERT:
            if op.kind is OpKind.DELETE:
                del self._writes[slot]  # never existed outside the txn
            else:
                self._writes[slot] = WriteOp(op.table, op.key, OpKind.INSERT, op.values)
        elif previous.kind is OpKind.DELETE:
            if op.kind is OpKind.INSERT:
                self._writes[slot] = WriteOp(op.table, op.key, OpKind.UPDATE, op.values)
            else:
                raise TransactionStateError(
                    f"transaction {self.txn_id}: write after delete of "
                    f"{op.table!r}:{op.key!r}"
                )
        else:  # previous UPDATE
            self._writes[slot] = op

    def buffered_op(self, table: str, key: Any) -> Optional[WriteOp]:
        """The transaction's own pending op on a row, if any."""
        return self._writes.get((table, key))

    def buffered_read(self, table: str, key: Any) -> tuple[bool, Optional[Mapping[str, Any]]]:
        """Read-your-own-writes lookup.

        Returns ``(hit, values)``: ``hit`` is True when the transaction has
        a buffered op for the row, in which case ``values`` is the buffered
        image (None for a buffered delete).
        """
        op = self._writes.get((table, key))
        if op is None:
            return False, None
        if op.kind is OpKind.DELETE:
            return True, None
        return True, op.values

    def note_read(self, table: str, key: Any) -> None:
        """Record a row read (for histories and analysis)."""
        self.read_keys.add((table, key))

    def ops_for_table(self, table: str) -> list[WriteOp]:
        """Buffered ops touching ``table``, in buffering order.

        Lets read paths (scan/lookup overlay) skip materialising a full
        :class:`WriteSet` — the overwhelmingly common case is a transaction
        with no buffered writes on the scanned table."""
        if not self._writes:
            return []
        return [op for op in self._writes.values() if op.table == table]

    # -- writeset extraction --------------------------------------------------
    @property
    def writeset(self) -> WriteSet:
        """The transaction's current writeset.

        The :class:`WriteSet` snapshots the buffered ops (ops themselves are
        frozen), so the instance is cached until the next buffered write."""
        ws = self._writeset_cache
        if ws is None:
            ws = self._writeset_cache = WriteSet(self._writes.values())
        return ws

    def partial_writeset(self) -> WriteSet:
        """Alias for :attr:`writeset` taken mid-transaction — the *partial
        writeset* the proxy checks during early certification."""
        return self.writeset

    @property
    def table_set(self) -> frozenset[str]:
        """Tables written so far (reads are tracked in ``read_keys``)."""
        return frozenset(table for table, _ in self._writes)

    # -- termination -------------------------------------------------------
    def mark_committed(self, commit_version: Optional[int]) -> None:
        """Transition to COMMITTED (``commit_version`` None when read-only)."""
        self._require_active()
        self.state = TxnState.COMMITTED
        self.commit_version = commit_version

    def mark_aborted(self, reason: str = "aborted") -> None:
        """Transition to ABORTED. Aborting twice is a no-op."""
        if self.state is TxnState.ABORTED:
            return
        self._require_active()
        self.state = TxnState.ABORTED
        self.abort_reason = reason

    def __repr__(self) -> str:
        return (
            f"<Txn {self.txn_id} snap=v{self.snapshot_version} "
            f"{self.state.value} writes={len(self._writes)}>"
        )
