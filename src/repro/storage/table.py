"""Versioned table: primary index of version chains plus secondary indexes.

A :class:`VersionedTable` stores every committed version of every row (until
vacuumed) and answers snapshot reads and scans.  Secondary indexes map a
column value to the set of keys that *ever* held that value; lookups filter
candidates through snapshot visibility, so index reads are as consistent as
primary reads.
"""

from __future__ import annotations

import logging
from bisect import bisect_right
from typing import Any, Callable, Iterator, Mapping, Optional

from .errors import SchemaError
from .rows import RowVersion, VersionChain
from .schema import TableSchema
from .writeset import OpKind, WriteOp

__all__ = ["VersionedTable"]

_logger = logging.getLogger(__name__)


class VersionedTable:
    """All committed state of one table, multiversioned."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._chains: dict[Any, VersionChain] = {}
        self._indexes: dict[str, dict[Any, set]] = {col: {} for col in schema.indexes}
        #: key-ordered snapshot of the key set, rebuilt lazily after inserts
        self._sorted_cache: Optional[list] = None
        #: exact type shared by every key so far (None until the first key);
        #: with a homogeneous key set plain ``sorted()`` reproduces the
        #: :func:`_sort_token` order without building a token per key
        self._key_type: Optional[type] = None
        self._mixed_keys = False
        #: lookups on unindexed columns that degraded to a full scan
        self.scan_fallbacks = 0
        self._fallback_logged: set[str] = set()

    # -- key ordering -------------------------------------------------------
    def _note_key(self, key: Any) -> None:
        """Record a (possibly) new key: invalidate the sorted snapshot and
        track key-type homogeneity."""
        self._sorted_cache = None
        if not self._mixed_keys:
            key_type = type(key)
            if self._key_type is None:
                self._key_type = key_type
            elif self._key_type is not key_type:
                self._mixed_keys = True

    def _ordered_keys(self) -> list:
        """All keys ever written, in :func:`_sort_token` order (cached)."""
        cache = self._sorted_cache
        if cache is None:
            if self._mixed_keys:
                cache = sorted(self._chains, key=_sort_token)
            else:
                cache = sorted(self._chains)
            self._sorted_cache = cache
        return cache

    # -- reads --------------------------------------------------------------
    def read(self, key: Any, snapshot_version: int) -> Optional[Mapping[str, Any]]:
        """Row values visible at ``snapshot_version``, or None."""
        chain = self._chains.get(key)
        if chain is None:
            return None
        # Inlined VersionChain.visible_at (hot read path).
        commit_versions = chain._commit_versions
        idx = bisect_right(commit_versions, snapshot_version)
        if idx == 0:
            return None
        version = chain._versions[idx - 1]
        return None if version.deleted else version.values

    def exists(self, key: Any, snapshot_version: int) -> bool:
        """True when ``key`` is visible at ``snapshot_version``."""
        chain = self._chains.get(key)
        return chain is not None and chain.exists_at(snapshot_version)

    def latest_commit_version(self, key: Any) -> int:
        """Newest commit version that wrote ``key`` (0 if never written)."""
        chain = self._chains.get(key)
        return 0 if chain is None else chain.latest_commit_version

    def scan(
        self,
        snapshot_version: int,
        predicate: Optional[Callable[[Mapping[str, Any]], bool]] = None,
        limit: Optional[int] = None,
    ) -> Iterator[Mapping[str, Any]]:
        """Yield visible rows (optionally filtered), in key order."""
        count = 0
        chains = self._chains
        for key in self._ordered_keys():
            version = chains[key].visible_at(snapshot_version)
            if version is None:
                continue
            values = version.values
            if predicate is not None and not predicate(values):
                continue
            yield values
            count += 1
            if limit is not None and count >= limit:
                return

    def lookup(self, column: str, value: Any, snapshot_version: int) -> list:
        """Keys of visible rows whose ``column`` equals ``value``.

        Uses the secondary index when one exists, otherwise falls back to a
        scan (counted in :attr:`scan_fallbacks` and logged once per column,
        so silently slow workloads are diagnosable).  Candidates from the
        index are re-checked against the snapshot (the index covers all
        historical values).
        """
        index = self._indexes.get(column)
        if index is not None:
            candidates = index.get(value)
            if not candidates:
                return []
            keys = []
            chains = self._chains
            for key in candidates:
                chain = chains.get(key)
                version = chain.visible_at(snapshot_version) if chain is not None else None
                if version is not None and version.values.get(column) == value:
                    keys.append(key)
            if self._mixed_keys:
                return sorted(keys, key=_sort_token)
            return sorted(keys)
        if column not in self.schema.column_names:
            raise SchemaError(f"table {self.schema.name!r} has no column {column!r}")
        self.scan_fallbacks += 1
        if column not in self._fallback_logged:
            self._fallback_logged.add(column)
            _logger.warning(
                "table %r: lookup on unindexed column %r fell back to an "
                "O(n) scan; declare a secondary index if this path is hot",
                self.schema.name,
                column,
            )
        return [
            row[self.schema.primary_key]
            for row in self.scan(snapshot_version, lambda r: r.get(column) == value)
        ]

    def count(self, snapshot_version: int) -> int:
        """Number of visible rows at ``snapshot_version``."""
        return sum(
            1 for chain in self._chains.values() if chain.exists_at(snapshot_version)
        )

    # -- writes -----------------------------------------------------------
    def apply_op(self, op: WriteOp, commit_version: int) -> None:
        """Install one committed mutation at ``commit_version``.

        Called by the engine on local commit and on refresh application;
        the certifier's total order guarantees increasing commit versions
        per chain.
        """
        if op.table != self.schema.name:
            raise SchemaError(
                f"op for table {op.table!r} applied to {self.schema.name!r}"
            )
        chain = self._chains.get(op.key)
        if chain is None:
            chain = self._chains[op.key] = VersionChain()
            self._note_key(op.key)
        if op.kind is OpKind.DELETE:
            chain.append(RowVersion(commit_version, None, deleted=True))
            return
        self.schema.validate_row(op.values)
        if self.schema.key_of(op.values) != op.key:
            raise SchemaError(
                f"table {self.schema.name!r}: op key {op.key!r} does not match "
                f"row primary key {self.schema.key_of(op.values)!r}"
            )
        chain.append(RowVersion(commit_version, op.values))
        for column, index in self._indexes.items():
            index.setdefault(op.values[column], set()).add(op.key)

    # -- anti-entropy --------------------------------------------------------
    def latest_states(self):
        """Yield ``(key, values, latest_commit_version, deleted)`` for every
        key ever written — the newest committed image per chain, in key
        order.  Digest recomputation and peer row sync both walk this."""
        for key in self._ordered_keys():
            latest = self._chains[key].latest
            if latest is None:
                continue
            yield key, latest.values, latest.commit_version, latest.deleted

    def replace_rows(self, entries, keep_newer_than: Optional[int] = None) -> int:
        """Online repair: adopt a healthy peer's latest row images.

        ``entries`` is an iterable of ``(key, values, commit_version,
        deleted)`` as produced by :meth:`latest_states`.  With
        ``keep_newer_than`` set, chains whose newest commit version exceeds
        it are kept untouched — this copy already applied writes the peer's
        capture cannot know about (repair under continuous load); every
        other chain is replaced by the peer image.  A row present here but
        absent at the peer (and not newer than the capture) is a phantom
        this copy invented — its chain is dropped.  History below adopted
        images is discarded (the repaired replica serves no reads while
        quarantined, so no snapshot can still need it).  Returns the number
        of keys whose visible state actually differed.
        """
        incoming: dict[Any, RowVersion] = {}
        for key, values, commit_version, deleted in entries:
            incoming[key] = RowVersion(commit_version, values, deleted=deleted)
        kept: dict[Any, VersionChain] = {}
        if keep_newer_than is not None:
            kept = {
                key: chain
                for key, chain in self._chains.items()
                if chain.latest_commit_version > keep_newer_than
            }
        changed = 0
        for key, version in incoming.items():
            if key in kept:
                continue
            current = self._chains.get(key)
            latest = current.latest if current is not None else None
            if (
                latest is None
                or latest.deleted != version.deleted
                or latest.values != version.values
            ):
                changed += 1
        for key in self._chains:
            if key not in incoming and key not in kept:
                changed += 1
        chains: dict[Any, VersionChain] = dict(kept)
        for key, version in incoming.items():
            if key in kept:
                continue
            chain = chains[key] = VersionChain()
            chain.append(version)
        self._chains = chains
        self._sorted_cache = None
        self._key_type = None
        self._mixed_keys = False
        for key in chains:
            self._note_key(key)
        for column in self._indexes:
            self._indexes[column] = {}
        for key, chain in self._chains.items():
            for version in chain.versions():
                if not version.deleted:
                    for column, index in self._indexes.items():
                        index.setdefault(version.values[column], set()).add(key)
        return changed

    # -- maintenance ---------------------------------------------------------
    def vacuum(self, horizon_version: int) -> int:
        """Trim version chains below the snapshot horizon; returns versions
        removed."""
        return sum(chain.vacuum(horizon_version) for chain in self._chains.values())

    def version_count(self) -> int:
        """Total stored versions across all chains (storage footprint)."""
        return sum(len(chain) for chain in self._chains.values())

    def __len__(self) -> int:
        """Number of keys ever written (including tombstoned)."""
        return len(self._chains)


def _sort_token(key: Any) -> tuple:
    """Stable ordering across mixed key types."""
    return (type(key).__name__, key)
