"""In-memory MVCC storage engine providing snapshot isolation.

This package is the "standalone DBMS" substrate of the prototype (the paper
used Microsoft SQL Server 2008 at snapshot isolation level; see DESIGN.md for
the substitution rationale).
"""

from .database import Database
from .engine import StorageEngine
from .errors import (
    DuplicateKeyError,
    SchemaError,
    StorageError,
    TransactionAborted,
    TransactionStateError,
    UnknownRowError,
    UnknownTableError,
    WriteConflictError,
)
from .rows import RowVersion, VersionChain
from .schema import Column, TableSchema
from .table import VersionedTable
from .transaction import Transaction, TxnState
from .writeset import OpKind, WriteOp, WriteSet

__all__ = [
    "Column",
    "Database",
    "DuplicateKeyError",
    "OpKind",
    "RowVersion",
    "SchemaError",
    "StorageEngine",
    "StorageError",
    "TableSchema",
    "Transaction",
    "TransactionAborted",
    "TransactionStateError",
    "TxnState",
    "UnknownRowError",
    "UnknownTableError",
    "VersionChain",
    "VersionedTable",
    "WriteConflictError",
    "WriteOp",
    "WriteSet",
]
