"""Order-independent state digests — the anti-entropy primitive.

Each table's digest is the XOR of a 64-bit content hash per *visible latest*
row, keyed by ``(table, key, row-content)``.  XOR makes the digest

* **incremental** — applying a writeset updates it in O(|writeset|): XOR the
  replaced row images out, XOR the new images in (a per-slot hash cache means
  only the new image is ever hashed);
* **order-independent** — two replicas that applied the same set of commits
  hold the same digest even if the partitioned pipeline installed them in
  different interleavings;
* **vacuum-invariant** — vacuum only trims superseded history, never the
  newest visible image, so the digest is untouched by garbage collection.

Two digests exist per table: the cheap incremental one maintained on the
apply path, and :meth:`~repro.storage.database.Database.recompute_digests`,
the full-scan oracle that rereads every row.  They agree unless the bits
under the incremental bookkeeping rotted — which is exactly the divergence
class a *deep* scrub detects (see ``middleware/scrubber.py``).

:class:`DigestTracker` is the certifier-side shadow: it maintains the same
per-table digests purely from the stream of certified writesets (after-images
travel in the writeset, so no row storage is needed beyond the per-slot hash
cache) and keeps a change-point history so a replica's digest vector can be
checked *at the replica's own pinned version* — apples-to-apples regardless
of how far each replica has caught up.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Mapping, Optional

from .writeset import OpKind, WriteSet

__all__ = ["row_content_hash", "DigestTracker"]

#: 64-bit FNV-1a constants — the dependency-free fallback content hash for
#: rows whose column values are unhashable.  The digest is an integrity
#: check against *accidental* divergence (lost or doubled applies, bit
#: rot), not an adversary-proof authenticator.
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = (1 << 64) - 1


def _fnv1a(data: bytes) -> int:
    h = _FNV_OFFSET
    for byte in data:
        h = ((h ^ byte) * _FNV_PRIME) & _MASK
    return h


def row_content_hash(table: str, key: Any, values: Mapping[str, Any]) -> int:
    """64-bit content hash of one visible row, keyed by table, key and the
    full row image.  ``frozenset`` canonicalisation makes it independent of
    column insertion order.

    The fast path rides CPython's C-level tuple hash, which keeps digest
    maintenance within its ≤10% budget on the writeset-apply hot path
    (``benchmarks/bench_scrub.py``).  That hash is randomised per process —
    fine here, because digests are process-local integrity checks: every
    replica and the certifier's tracker hash with the same seed, digests
    travel only over the simulated network and are never persisted.  Rows
    with unhashable column values fall back to a deterministic FNV-1a over
    a sorted ``repr`` canonical form.
    """
    try:
        h = hash((table, key, frozenset(values.items())))
    except TypeError:  # unhashable column value (e.g. a list) — slow path
        canonical = (
            table, key, tuple(sorted((c, repr(v)) for c, v in values.items()))
        )
        h = _fnv1a(repr(canonical).encode("utf-8"))
    return (h & _MASK) or 1  # never hash to 0 (the XOR identity)


class DigestTracker:
    """Certifier-side digest oracle with a per-table change-point history.

    Feed it every certified writeset (in commit order) and it answers "what
    should table ``t``'s digest be at version ``v``?" for any ``v`` not yet
    truncated — the expectation the scrubber compares replica digests
    against.  A warm standby maintains its own tracker from the decision
    records it tails, so a promoted certifier keeps a live oracle.
    """

    def __init__(self):
        #: (table, key) -> content hash currently folded into the digest
        self._latest: dict[tuple[str, Any], int] = {}
        #: table -> current XOR digest
        self._digests: dict[str, int] = {}
        #: table -> ascending (version, digest-after) change points
        self._history: dict[str, list[tuple[int, int]]] = {}
        #: newest version applied to the tracker
        self.version = 0

    # -- construction --------------------------------------------------------
    @classmethod
    def from_database(cls, database) -> "DigestTracker":
        """Seed a tracker from a populated database at version 0.

        Every replica loads the identical initial data set, so one copy's
        version-0 state seeds the oracle for all of them.
        """
        if database.version != 0:
            raise ValueError(
                "digest tracker must be seeded before the first commit "
                f"(database is at v{database.version})"
            )
        tracker = cls()
        for table in database.table_names:
            digest = 0
            for key, values, _lcv, deleted in database.table(table).latest_states():
                if deleted:
                    continue
                h = row_content_hash(table, key, values)
                tracker._latest[(table, key)] = h
                digest ^= h
            tracker._digests[table] = digest
            tracker._history[table] = [(0, digest)]
        return tracker

    # -- maintenance ---------------------------------------------------------
    def apply(self, writeset: WriteSet, version: int) -> None:
        """Fold one certified writeset in at ``version``.

        O(|writeset|) — the same cost class as certification itself.  A
        partitioned commit may arrive as several shard slices carrying the
        same global version; each slice folds in and the change point for
        that version is updated in place.
        """
        if version < self.version:
            raise ValueError(
                f"digest tracker at v{self.version} fed writeset for v{version}"
            )
        touched = set()
        for op in writeset:
            slot = (op.table, op.key)
            digest = self._digests.get(op.table, 0)
            old = self._latest.pop(slot, None)
            if old is not None:
                digest ^= old
            if op.kind is not OpKind.DELETE:
                new = op.content_hash()
                self._latest[slot] = new
                digest ^= new
            self._digests[op.table] = digest
            touched.add(op.table)
        for table in touched:
            history = self._history.setdefault(table, [])
            point = (version, self._digests[table])
            if history and history[-1][0] == version:
                history[-1] = point
            else:
                history.append(point)
        self.version = max(self.version, version)

    def truncate(self, horizon: int) -> int:
        """Drop change points below ``horizon``, keeping the newest at or
        below it (still answerable).  Mirrors decision-log truncation so the
        history cannot grow without bound.  Returns points dropped."""
        dropped = 0
        for table, history in self._history.items():
            idx = bisect_right(history, (horizon, float("inf")))
            if idx > 1:
                del history[: idx - 1]
                dropped += idx - 1
        return dropped

    # -- queries -------------------------------------------------------------
    @property
    def tables(self) -> tuple[str, ...]:
        return tuple(self._history)

    def digest_at(self, table: str, version: int) -> Optional[int]:
        """Table ``t``'s expected digest at ``version`` (None when the
        history for that version has been truncated away)."""
        history = self._history.get(table)
        if not history:
            return 0 if version >= 0 else None
        idx = bisect_right(history, (version, float("inf")))
        if idx == 0:
            return None  # truncated past the asked-for version
        return history[idx - 1][1]

    def expected_at(self, version: int) -> Optional[dict[str, int]]:
        """The full per-table digest vector expected at ``version`` (None
        when any table's history no longer reaches back that far)."""
        vector: dict[str, int] = {}
        for table in self._history:
            digest = self.digest_at(table, version)
            if digest is None:
                return None
            vector[table] = digest
        return vector

    def __repr__(self) -> str:
        return f"<DigestTracker v{self.version} tables={sorted(self._history)}>"
