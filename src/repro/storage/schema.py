"""Relational schema definitions.

A :class:`TableSchema` names its columns, designates a single-column primary
key, and may declare secondary indexes.  Values are plain Python objects;
column types are validated on write so that bad workload code fails loudly
instead of storing garbage.

The micro-benchmark schema in the paper — primary key (integer), an integer
field and a 100-character text field — is expressed as::

    TableSchema(
        "t0",
        columns=[
            Column("id", int),
            Column("filler_int", int),
            Column("filler_text", str),
        ],
        primary_key="id",
    )
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from .errors import SchemaError

__all__ = ["Column", "TableSchema"]

_ALLOWED_TYPES = (int, float, str, bytes, bool)


@dataclass(frozen=True)
class Column:
    """A named, typed column.

    ``type_`` must be one of int/float/str/bytes/bool.  ``nullable`` columns
    accept ``None``.  bool is checked before int (bool is an int subclass).
    """

    name: str
    type_: type
    nullable: bool = False

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"invalid column name {self.name!r}")
        if self.type_ not in _ALLOWED_TYPES:
            raise SchemaError(
                f"column {self.name!r}: unsupported type {self.type_!r}; "
                f"expected one of {[t.__name__ for t in _ALLOWED_TYPES]}"
            )

    def validate(self, value: Any) -> None:
        """Raise :class:`SchemaError` unless ``value`` fits this column."""
        if value is None:
            if not self.nullable:
                raise SchemaError(f"column {self.name!r} is not nullable")
            return
        if self.type_ is int and isinstance(value, bool):
            raise SchemaError(f"column {self.name!r}: bool given for int column")
        if self.type_ is float and isinstance(value, int) and not isinstance(value, bool):
            return  # ints are acceptable floats
        if not isinstance(value, self.type_):
            raise SchemaError(
                f"column {self.name!r}: expected {self.type_.__name__}, "
                f"got {type(value).__name__} ({value!r})"
            )


@dataclass(frozen=True)
class TableSchema:
    """Schema of one table: columns, primary key and secondary indexes."""

    name: str
    columns: Sequence[Column]
    primary_key: str
    indexes: Sequence[str] = field(default_factory=tuple)

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"invalid table name {self.name!r}")
        if not self.columns:
            raise SchemaError(f"table {self.name!r} has no columns")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {self.name!r} has duplicate column names")
        # Derived lookups, cached once (before the validations below, which
        # use column()): schema validation runs on every committed write,
        # so these must not be rebuilt per call.
        object.__setattr__(self, "_names", tuple(names))
        object.__setattr__(self, "_name_set", frozenset(names))
        object.__setattr__(self, "_by_name", {c.name: c for c in self.columns})
        # Full-row fast path: exact-class match per column, falling back to
        # Column.validate (same errors) for None/subclass/coercion cases.
        object.__setattr__(
            self, "_checks", tuple((c.name, c.type_, c.validate) for c in self.columns)
        )
        if self.primary_key not in names:
            raise SchemaError(
                f"table {self.name!r}: primary key {self.primary_key!r} "
                "is not a column"
            )
        pk_col = self.column(self.primary_key)
        if pk_col.nullable:
            raise SchemaError(f"table {self.name!r}: primary key may not be nullable")
        for idx in self.indexes:
            if idx not in names:
                raise SchemaError(
                    f"table {self.name!r}: index column {idx!r} is not a column"
                )
        object.__setattr__(self, "columns", tuple(self.columns))
        object.__setattr__(self, "indexes", tuple(self.indexes))

    @property
    def column_names(self) -> tuple[str, ...]:
        return self._names

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        col = self._by_name.get(name)
        if col is None:
            raise SchemaError(f"table {self.name!r} has no column {name!r}")
        return col

    def validate_row(self, values: Mapping[str, Any], partial: bool = False) -> None:
        """Validate a full row (or, with ``partial=True``, an update's
        changed columns only)."""
        known = self._name_set
        for key in values:
            if key not in known:
                raise SchemaError(f"table {self.name!r} has no column {key!r}")
        if not partial:
            if len(values) < len(known):
                missing = known - set(values)
                raise SchemaError(
                    f"table {self.name!r}: row missing columns {sorted(missing)}"
                )
            # Every column is present (all keys known, counts match), so
            # index directly and only fall back for non-exact classes.
            for name, type_, validate in self._checks:
                value = values[name]
                if value.__class__ is not type_:
                    validate(value)
            return
        for col in self.columns:
            if col.name in values:
                col.validate(values[col.name])

    def key_of(self, values: Mapping[str, Any]) -> Any:
        """Extract the primary-key value from a row mapping."""
        try:
            return values[self.primary_key]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r}: row has no primary key "
                f"column {self.primary_key!r}"
            ) from None
