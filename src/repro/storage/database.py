"""A database: a named collection of versioned tables plus the local version
counter.

The paper counts *database versions*: the database starts at version 0 and
the version increments each time an update transaction commits.  Each replica
advances through this sequence at its own pace; :attr:`Database.version` is
that replica's ``V_local``.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from .digest import row_content_hash
from .errors import StorageError, UnknownTableError
from .schema import TableSchema
from .table import VersionedTable
from .writeset import OpKind, WriteSet

__all__ = ["Database"]


class Database:
    """Tables plus the committed-version counter of one replica."""

    def __init__(self, name: str = "db", allow_gaps: bool = False,
                 maintain_digests: bool = True):
        self.name = name
        self._tables: dict[str, VersionedTable] = {}
        self._version = 0
        # commit_version -> writeset, kept for conflict checks and recovery.
        self._committed_writesets: dict[int, WriteSet] = {}
        #: permit out-of-order applies (the partitioned commit pipeline
        #: installs independent partitions' commits as they arrive);
        #: :attr:`version` then reports the contiguous *watermark*
        self.allow_gaps = allow_gaps
        #: versions applied ahead of the watermark (only with ``allow_gaps``)
        self._applied_ahead: set[int] = set()
        #: maintain the incremental anti-entropy digests on the apply path
        #: (pure computation, no simulation events — the overhead bench
        #: toggles it off to price the maintenance)
        self.maintain_digests = maintain_digests
        #: table -> incremental XOR digest over visible latest row images
        self._digests: dict[str, int] = {}
        #: (table, key) -> content hash currently folded into the digest,
        #: so replacing a row never rehashes the old image
        self._latest_hash: dict[tuple, int] = {}
        #: table -> ops applied but not yet folded into the digest; the
        #: apply hot path pays one list append, the fold runs lazily at the
        #: next digest query (scrub rounds, not refreshes, pay it).  The ops
        #: are already retained by ``_committed_writesets``, so the queue
        #: adds references, not copies.
        self._pending_digest_ops: dict[str, list] = {}
        #: table -> version through which a peer row-sync repaired it; ops
        #: at or below the floor are already reflected in the synced images
        #: and are skipped on replay (see :meth:`resync_table`)
        self._resync_floor: dict[str, int] = {}
        #: ops skipped on the apply path because a resync already held them
        self.resync_skipped_ops = 0

    # -- schema ------------------------------------------------------------
    def create_table(self, schema: TableSchema) -> VersionedTable:
        """Create a table; name must be unique."""
        if schema.name in self._tables:
            raise StorageError(f"table {schema.name!r} already exists")
        table = VersionedTable(schema)
        self._tables[schema.name] = table
        return table

    def table(self, name: str) -> VersionedTable:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def scan_fallbacks(self) -> int:
        """Total lookups that degraded to an O(n) scan because the queried
        column has no secondary index, across all tables (see
        :attr:`VersionedTable.scan_fallbacks`)."""
        return sum(table.scan_fallbacks for table in self._tables.values())

    # -- versions ---------------------------------------------------------
    @property
    def version(self) -> int:
        """This copy's committed database version (``V_local``).

        With ``allow_gaps`` this is the contiguous *watermark*: the largest
        ``v`` such that every version ``1..v`` has been applied.  Snapshots
        are taken at the watermark, so a row installed out of order (its
        version is above the watermark) stays invisible until the gap
        below it fills — which keeps reads repeatable.
        """
        return self._version

    def has_applied(self, version: int) -> bool:
        """Whether ``version``'s writeset has been installed (contiguous
        prefix or ahead of the watermark)."""
        return version <= self._version or version in self._applied_ahead

    @property
    def has_applied_ahead(self) -> bool:
        """True while versions above the contiguous watermark are installed
        (out-of-order partitioned applies in flight).  Digest comparisons at
        the watermark are skipped then — the digest already includes the
        ahead images."""
        return bool(self._applied_ahead)

    # -- commit application ---------------------------------------------------
    def apply_writeset(self, writeset: WriteSet, commit_version: int) -> None:
        """Install a certified writeset at ``commit_version``.

        Both local commits and refresh transactions funnel through here, so
        every copy applies the identical mutation sequence in the certifier's
        total order.  Empty writesets (read-only transactions) do not consume
        a version and must not be passed.
        """
        if writeset.is_empty:
            raise StorageError("refusing to apply an empty writeset")
        self._check_apply_order(commit_version)
        for op in writeset:
            if self._resync_floor.get(op.table, 0) >= commit_version:
                # A peer row-sync already installed this table's state
                # through a newer version; the op's effect is in the synced
                # images and re-appending it would fork the chain.
                self.resync_skipped_ops += 1
                continue
            table = self.table(op.table)
            if self.maintain_digests:
                self._digest_apply(table, op, commit_version)
            else:
                table.apply_op(op, commit_version)
        self._advance_version(commit_version)
        self._committed_writesets[commit_version] = writeset

    def _check_apply_order(self, commit_version: int) -> None:
        if commit_version != self._version + 1:
            if (
                not self.allow_gaps
                or commit_version <= self._version
                or commit_version in self._applied_ahead
            ):
                raise StorageError(
                    f"out-of-order apply: database at v{self._version}, "
                    f"writeset for v{commit_version}"
                )

    def _advance_version(self, commit_version: int) -> None:
        if commit_version == self._version + 1:
            self._version = commit_version
            # Absorb any run applied ahead that is now contiguous.
            while self._version + 1 in self._applied_ahead:
                self._applied_ahead.discard(self._version + 1)
                self._version += 1
        else:
            self._applied_ahead.add(commit_version)

    def load_row(self, table: str, values: Mapping[str, Any]) -> None:
        """Bulk-load one row as part of the initial data set (version 0).

        Initial population is not an update transaction: every replica
        starts with the identical data set at database version 0, so loads
        bypass versioning entirely.  Only legal before the first commit.
        """
        if self._version != 0:
            raise StorageError("load_row is only legal before the first commit")
        tbl = self.table(table)
        from .writeset import WriteOp  # local import avoids cycle

        op = WriteOp(table, tbl.schema.key_of(values), OpKind.INSERT, values)
        if self.maintain_digests:
            self._digest_apply(tbl, op, 0)
        else:
            tbl.apply_op(op, 0)

    def writesets_since(self, version: int) -> list[tuple[int, WriteSet]]:
        """(commit_version, writeset) pairs committed after ``version``,
        ascending.  Used for conflict checks and recovery replay."""
        return [
            (v, self._committed_writesets[v])
            for v in range(version + 1, self._version + 1)
            if v in self._committed_writesets
        ]

    def latest_write_version(self, table: str, key: Any) -> int:
        """Newest commit version that wrote ``(table, key)``; 0 if none."""
        return self.table(table).latest_commit_version(key)

    # -- anti-entropy digests ------------------------------------------------
    def _digest_apply(self, table: VersionedTable, op, commit_version: int) -> None:
        """Apply one op and queue its digest fold (see ``_fold_pending``)."""
        table.apply_op(op, commit_version)
        pending = self._pending_digest_ops.get(op.table)
        if pending is None:
            pending = self._pending_digest_ops[op.table] = []
        pending.append(op)

    def _fold_pending(self, table: Optional[str] = None) -> None:
        """Fold queued ops into the incremental digests.

        Deferred maintenance keeps the refresh-apply hot path at one list
        append per op (``benchmarks/bench_scrub.py`` prices the ≤10%
        budget); the fold itself is O(ops since the last digest query) and
        runs on scrub rounds.  Replaying the per-table queue in apply order
        yields exactly the digest eager maintenance would have — the
        replaced image's hash comes from the per-slot cache (never
        rehashed), and the new image's hash is usually cache-warmed by the
        certifier's tracker (``WriteOp.content_hash``).
        """
        names = (table,) if table is not None else tuple(self._pending_digest_ops)
        latest = self._latest_hash
        for name in names:
            pending = self._pending_digest_ops.get(name)
            if not pending:
                continue
            digest = self._digests.get(name, 0)
            for op in pending:
                slot = (name, op.key)
                old = latest.pop(slot, None)
                if old is not None:
                    digest ^= old
                if op.kind is not OpKind.DELETE:
                    new = op.content_hash()
                    latest[slot] = new
                    digest ^= new
            pending.clear()
            self._digests[name] = digest

    def digest(self, table: str) -> int:
        """The incremental digest of one table (0 for a never-written one)."""
        self.table(table)  # raise UnknownTableError for typos
        self._fold_pending(table)
        return self._digests.get(table, 0)

    def digests(self) -> dict[str, int]:
        """The incremental per-table digest vector (every table, 0 when
        untouched) — a *light* scrub answers with this."""
        self._fold_pending()
        return {name: self._digests.get(name, 0) for name in self._tables}

    def recompute_digests(self, table: Optional[str] = None) -> dict[str, int]:
        """Full-scan oracle: rehash every visible latest row image.

        Equal to :meth:`digests` unless state rotted underneath the
        incremental bookkeeping — a *deep* scrub answers with this, which is
        what catches in-place corruption the apply path never saw.
        """
        names = (table,) if table is not None else self.table_names
        out: dict[str, int] = {}
        for name in names:
            digest = 0
            for key, values, _lcv, deleted in self.table(name).latest_states():
                if not deleted:
                    digest ^= row_content_hash(name, key, values)
            out[name] = digest
        return out

    def adopt_checkpoint(self, version: int) -> None:
        """Jump the apply watermark to ``version`` after a checkpoint install.

        A bootstrap checkpoint carries every table's latest row images as of
        the donor's ``version``, so once :meth:`resync_table` has installed
        them this copy *is* at that version — without having applied the
        individual writesets.  Versions applied ahead that the checkpoint now
        covers are absorbed; a contiguous run above the new watermark is
        absorbed too (the joiner may have buffered refreshes out of order
        while the transfer was in flight).
        """
        if version > self._version:
            self._version = version
            self._applied_ahead = {
                v for v in self._applied_ahead if v > version
            }
            while self._version + 1 in self._applied_ahead:
                self._applied_ahead.discard(self._version + 1)
                self._version += 1

    def resync_table(self, table: str, entries, synced_version: int) -> int:
        """Online repair: adopt a healthy peer's latest row images for
        ``table`` (the peer captured them at its version
        ``synced_version``).

        Rows this copy wrote *after* the peer's capture are kept untouched
        (the capture cannot know about them — repair under continuous load),
        and ops for this table at or below ``synced_version`` are
        subsequently skipped on the apply path — their effect is already in
        the adopted images — so the replica's own catch-up replay composes
        cleanly with the sync.  The table's digest is rebuilt from the new
        images.  Returns the number of keys whose visible state differed.
        """
        tbl = self.table(table)
        changed = tbl.replace_rows(entries, keep_newer_than=synced_version)
        self._resync_floor[table] = max(
            self._resync_floor.get(table, 0), synced_version
        )
        if self.maintain_digests:
            # The rebuild below hashes every visible image, so queued folds
            # for this table are superseded; dropping them keeps the next
            # fold from resurrecting pre-repair hashes in the slot cache.
            self._pending_digest_ops.get(table, []).clear()
            for slot in [s for s in self._latest_hash if s[0] == table]:
                del self._latest_hash[slot]
            digest = 0
            for key, values, _lcv, deleted in tbl.latest_states():
                if not deleted:
                    h = row_content_hash(table, key, values)
                    self._latest_hash[(table, key)] = h
                    digest ^= h
            self._digests[table] = digest
        return changed

    # -- fault injection (corruption model) ----------------------------------
    def apply_writeset_corrupted(self, writeset: WriteSet, commit_version: int,
                                 mode: str) -> None:
        """Install ``commit_version`` *wrongly* — the silent-divergence
        faults the anti-entropy subsystem exists to catch.

        ``mode="skip"`` models a lost apply: the version bookkeeping
        advances (the replica believes it applied the refresh) but no row is
        touched.  ``mode="double"`` models a non-idempotent double
        application: the refresh applies normally, then each written row's
        numeric deltas are folded in a second time *in place*, beneath the
        digest bookkeeping — only a content rescan can see it.
        """
        if mode not in ("skip", "double"):
            raise ValueError(f"unknown corruption mode {mode!r}")
        if mode == "skip":
            self._check_apply_order(commit_version)
            self._advance_version(commit_version)
            self._committed_writesets[commit_version] = writeset
            return
        self.apply_writeset(writeset, commit_version)
        for op in writeset:
            if op.kind is OpKind.DELETE:
                continue
            self.corrupt_row_in_place(op.table, op.key)

    def corrupt_row_in_place(self, table: str, key) -> bool:
        """Bit-rot injection: scramble the newest image of ``(table, key)``
        in place, beneath the incremental digest.  Returns False when there
        is no visible image to corrupt."""
        chain = self.table(table)._chains.get(key)
        latest = chain.latest if chain is not None else None
        if latest is None or latest.deleted:
            return False
        schema = self.table(table).schema
        values = dict(latest.values)
        for column in sorted(values):
            if column == schema.primary_key:
                continue
            current = values[column]
            if isinstance(current, bool):
                values[column] = not current
            elif isinstance(current, (int, float)):
                values[column] = current + current + 1
            else:
                values[column] = f"{current}☠"
            # Swap in a corrupted copy rather than mutating the stored dict:
            # a row-sync capture taken before the corruption must keep
            # observing the clean image it captured.
            object.__setattr__(latest, "values", values)
            return True
        return False

    # -- maintenance ---------------------------------------------------------
    def vacuum(self, horizon_version: Optional[int] = None) -> int:
        """Trim row versions and writeset history below the horizon.

        With no horizon, trims to the current version (only the latest row
        images survive).  Returns the number of row versions removed.
        """
        horizon = self._version if horizon_version is None else horizon_version
        removed = sum(table.vacuum(horizon) for table in self._tables.values())
        for version in [v for v in self._committed_writesets if v <= horizon]:
            del self._committed_writesets[version]
        return removed

    def __repr__(self) -> str:
        return (
            f"<Database {self.name!r} v{self._version} "
            f"tables={list(self._tables)}>"
        )
