"""A database: a named collection of versioned tables plus the local version
counter.

The paper counts *database versions*: the database starts at version 0 and
the version increments each time an update transaction commits.  Each replica
advances through this sequence at its own pace; :attr:`Database.version` is
that replica's ``V_local``.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from .errors import StorageError, UnknownTableError
from .schema import TableSchema
from .table import VersionedTable
from .writeset import WriteSet

__all__ = ["Database"]


class Database:
    """Tables plus the committed-version counter of one replica."""

    def __init__(self, name: str = "db", allow_gaps: bool = False):
        self.name = name
        self._tables: dict[str, VersionedTable] = {}
        self._version = 0
        # commit_version -> writeset, kept for conflict checks and recovery.
        self._committed_writesets: dict[int, WriteSet] = {}
        #: permit out-of-order applies (the partitioned commit pipeline
        #: installs independent partitions' commits as they arrive);
        #: :attr:`version` then reports the contiguous *watermark*
        self.allow_gaps = allow_gaps
        #: versions applied ahead of the watermark (only with ``allow_gaps``)
        self._applied_ahead: set[int] = set()

    # -- schema ------------------------------------------------------------
    def create_table(self, schema: TableSchema) -> VersionedTable:
        """Create a table; name must be unique."""
        if schema.name in self._tables:
            raise StorageError(f"table {schema.name!r} already exists")
        table = VersionedTable(schema)
        self._tables[schema.name] = table
        return table

    def table(self, name: str) -> VersionedTable:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    # -- versions ---------------------------------------------------------
    @property
    def version(self) -> int:
        """This copy's committed database version (``V_local``).

        With ``allow_gaps`` this is the contiguous *watermark*: the largest
        ``v`` such that every version ``1..v`` has been applied.  Snapshots
        are taken at the watermark, so a row installed out of order (its
        version is above the watermark) stays invisible until the gap
        below it fills — which keeps reads repeatable.
        """
        return self._version

    def has_applied(self, version: int) -> bool:
        """Whether ``version``'s writeset has been installed (contiguous
        prefix or ahead of the watermark)."""
        return version <= self._version or version in self._applied_ahead

    # -- commit application ---------------------------------------------------
    def apply_writeset(self, writeset: WriteSet, commit_version: int) -> None:
        """Install a certified writeset at ``commit_version``.

        Both local commits and refresh transactions funnel through here, so
        every copy applies the identical mutation sequence in the certifier's
        total order.  Empty writesets (read-only transactions) do not consume
        a version and must not be passed.
        """
        if writeset.is_empty:
            raise StorageError("refusing to apply an empty writeset")
        if commit_version != self._version + 1:
            if (
                not self.allow_gaps
                or commit_version <= self._version
                or commit_version in self._applied_ahead
            ):
                raise StorageError(
                    f"out-of-order apply: database at v{self._version}, "
                    f"writeset for v{commit_version}"
                )
        for op in writeset:
            self.table(op.table).apply_op(op, commit_version)
        if commit_version == self._version + 1:
            self._version = commit_version
            # Absorb any run applied ahead that is now contiguous.
            while self._version + 1 in self._applied_ahead:
                self._applied_ahead.discard(self._version + 1)
                self._version += 1
        else:
            self._applied_ahead.add(commit_version)
        self._committed_writesets[commit_version] = writeset

    def load_row(self, table: str, values: Mapping[str, Any]) -> None:
        """Bulk-load one row as part of the initial data set (version 0).

        Initial population is not an update transaction: every replica
        starts with the identical data set at database version 0, so loads
        bypass versioning entirely.  Only legal before the first commit.
        """
        if self._version != 0:
            raise StorageError("load_row is only legal before the first commit")
        tbl = self.table(table)
        from .writeset import OpKind, WriteOp  # local import avoids cycle

        tbl.apply_op(WriteOp(table, tbl.schema.key_of(values), OpKind.INSERT, values), 0)

    def writesets_since(self, version: int) -> list[tuple[int, WriteSet]]:
        """(commit_version, writeset) pairs committed after ``version``,
        ascending.  Used for conflict checks and recovery replay."""
        return [
            (v, self._committed_writesets[v])
            for v in range(version + 1, self._version + 1)
            if v in self._committed_writesets
        ]

    def latest_write_version(self, table: str, key: Any) -> int:
        """Newest commit version that wrote ``(table, key)``; 0 if none."""
        return self.table(table).latest_commit_version(key)

    # -- maintenance ---------------------------------------------------------
    def vacuum(self, horizon_version: Optional[int] = None) -> int:
        """Trim row versions and writeset history below the horizon.

        With no horizon, trims to the current version (only the latest row
        images survive).  Returns the number of row versions removed.
        """
        horizon = self._version if horizon_version is None else horizon_version
        removed = sum(table.vacuum(horizon) for table in self._tables.values())
        for version in [v for v in self._committed_writesets if v <= horizon]:
            del self._committed_writesets[version]
        return removed

    def __repr__(self) -> str:
        return (
            f"<Database {self.name!r} v{self._version} "
            f"tables={list(self._tables)}>"
        )
