"""Writesets: the unit of certification and propagation.

A transaction's writeset is the set of records it inserted, updated or
deleted (Section IV of the paper).  The certifier checks writesets against
each other for write-write conflicts; committed writesets travel to the other
replicas as *refresh transactions* and are applied there.

A :class:`WriteOp` carries the full after-image of the row (or a tombstone),
so applying a refresh writeset needs no re-execution — exactly the
propagation model of the paper's middleware.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Optional

__all__ = ["OpKind", "WriteOp", "WriteSet"]


class OpKind(enum.Enum):
    """Kind of a single row mutation."""

    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"


@dataclass(frozen=True)
class WriteOp:
    """One row mutation: table, primary key, kind and the row after-image."""

    table: str
    key: Any
    kind: OpKind
    values: Optional[Mapping[str, Any]] = None
    _content_hash: Optional[int] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self):
        if self.kind is OpKind.DELETE:
            object.__setattr__(self, "values", None)
        else:
            if self.values is None:
                raise ValueError(f"{self.kind.value} op requires row values")
            object.__setattr__(self, "values", dict(self.values))

    def content_hash(self) -> int:
        """64-bit content hash of the after-image (``storage.digest``).

        Cached on the op: a certified op is folded into digests once by the
        certifier's tracker and once per replica apply, and the simulated
        network shares message objects — so each image is hashed once
        cluster-wide, which is what keeps digest maintenance within its
        budget on the refresh-apply hot path.
        """
        h = self._content_hash
        if h is None:
            from .digest import row_content_hash  # local import avoids cycle

            h = row_content_hash(self.table, self.key, self.values)
            object.__setattr__(self, "_content_hash", h)
        return h


class WriteSet:
    """An ordered collection of :class:`WriteOp`, at most one per row.

    Later ops on the same (table, key) replace earlier ones with the natural
    composition (e.g. INSERT then UPDATE collapses to INSERT with the updated
    image; INSERT then DELETE cancels out to DELETE-of-nothing which we keep
    as a tombstone only if the row pre-existed — the engine resolves that at
    buffering time, so here replacement is last-writer-wins on kind+image).
    """

    __slots__ = ("_ops", "_order", "_slots")

    def __init__(self, ops: Iterable[WriteOp] = ()):
        self._ops: dict[tuple[str, Any], WriteOp] = {}
        self._order: list[tuple[str, Any]] = []
        # Cached key-set; rebuilt lazily after a new slot is added so the
        # conflict predicate is a frozenset intersection, not per-op probing.
        self._slots: Optional[frozenset] = None
        for op in ops:
            self.add(op)

    # -- construction ------------------------------------------------------
    def add(self, op: WriteOp) -> None:
        """Add (or replace) the op for ``(op.table, op.key)``."""
        slot = (op.table, op.key)
        if slot not in self._ops:
            self._order.append(slot)
            self._slots = None
        self._ops[slot] = op

    # -- inspection ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ops)

    def __bool__(self) -> bool:
        return bool(self._ops)

    def __iter__(self) -> Iterator[WriteOp]:
        for slot in self._order:
            yield self._ops[slot]

    def __contains__(self, slot: tuple[str, Any]) -> bool:
        return slot in self._ops

    @property
    def is_empty(self) -> bool:
        """True for a read-only transaction's writeset."""
        return not self._ops

    @property
    def slots(self) -> frozenset:
        """The precomputed ``(table, key)`` key-set of this writeset.

        Cached between mutations: the certifier's conflict predicate and the
        certification index both consume it on every commit, so it must not
        be rebuilt per probe.
        """
        if self._slots is None:
            self._slots = frozenset(self._ops)
        return self._slots

    @property
    def tables(self) -> frozenset[str]:
        """The set of tables this writeset touches (drives table versions)."""
        return frozenset(table for table, _key in self._ops)

    def keys_for(self, table: str) -> frozenset:
        """Primary keys written in ``table``."""
        return frozenset(key for tbl, key in self._ops if tbl == table)

    def op_for(self, table: str, key: Any) -> Optional[WriteOp]:
        """The op on ``(table, key)``, if any."""
        return self._ops.get((table, key))

    # -- conflict detection ---------------------------------------------------
    def conflicts_with(self, other: "WriteSet") -> bool:
        """Write-write conflict test: any (table, key) written by both.

        This is the certifier's conflict predicate (Section IV): a
        transaction T can commit iff its writeset does not write-conflict
        with the writesets committed since T started.
        """
        return not self.slots.isdisjoint(other.slots)

    def conflicting_slots(self, other: "WriteSet") -> frozenset[tuple[str, Any]]:
        """The (table, key) slots written by both writesets."""
        return self.slots & other.slots

    def __repr__(self) -> str:
        return f"<WriteSet ops={len(self._ops)} tables={sorted(self.tables)}>"
