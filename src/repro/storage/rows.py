"""Row version chains for multiversion concurrency control.

Each primary key maps to a :class:`VersionChain` — the row's committed
versions ordered by commit version.  A transaction reading at snapshot
version *v* sees the newest version whose commit version is ``<= v``; a
version with ``deleted=True`` makes the row invisible from that point on.

Chains are append-mostly: commits append, reads binary-search, and
:meth:`VersionChain.vacuum` trims versions no active snapshot can see.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Mapping, Optional

__all__ = ["RowVersion", "VersionChain"]


class RowVersion:
    """One committed version of a row.

    ``values`` is a private snapshot of the full row at that version
    (copied on construction, never mutated afterwards); ``deleted`` marks
    a tombstone.  A plain slotted class rather than a frozen dataclass:
    one of these is allocated per committed write per replica, and the
    frozen-dataclass ``object.__setattr__`` init shows up in profiles.
    """

    __slots__ = ("commit_version", "values", "deleted")

    def __init__(
        self,
        commit_version: int,
        values: Optional[Mapping[str, Any]],
        deleted: bool = False,
    ):
        self.commit_version = commit_version
        self.values = None if deleted else dict(values or {})
        self.deleted = deleted

    def __repr__(self) -> str:
        return (
            f"RowVersion(commit_version={self.commit_version!r}, "
            f"values={self.values!r}, deleted={self.deleted!r})"
        )


class VersionChain:
    """Committed versions of a single row, ordered by commit version."""

    __slots__ = ("_versions", "_commit_versions")

    def __init__(self):
        self._versions: list[RowVersion] = []
        self._commit_versions: list[int] = []

    def __len__(self) -> int:
        return len(self._versions)

    @property
    def latest(self) -> Optional[RowVersion]:
        """The newest committed version, tombstone or not."""
        return self._versions[-1] if self._versions else None

    @property
    def latest_commit_version(self) -> int:
        """Commit version of the newest entry, 0 when the chain is empty."""
        return self._commit_versions[-1] if self._commit_versions else 0

    def versions(self):
        """Iterate the committed versions, oldest first."""
        return iter(self._versions)

    def append(self, version: RowVersion) -> None:
        """Append a committed version.

        Commit versions must be strictly increasing — the proxy applies
        commits in the certifier's total order, which guarantees this.
        """
        if self._commit_versions and version.commit_version <= self._commit_versions[-1]:
            raise ValueError(
                f"out-of-order commit version {version.commit_version} "
                f"(chain is at {self._commit_versions[-1]})"
            )
        self._versions.append(version)
        self._commit_versions.append(version.commit_version)

    def visible_at(self, snapshot_version: int) -> Optional[RowVersion]:
        """The version a snapshot at ``snapshot_version`` observes.

        Returns ``None`` when the row does not exist in that snapshot
        (never inserted yet, or tombstoned).
        """
        idx = bisect_right(self._commit_versions, snapshot_version)
        if idx == 0:
            return None
        version = self._versions[idx - 1]
        return None if version.deleted else version

    def exists_at(self, snapshot_version: int) -> bool:
        """True when the row is visible in the given snapshot."""
        return self.visible_at(snapshot_version) is not None

    def vacuum(self, horizon_version: int) -> int:
        """Drop versions superseded before ``horizon_version``.

        Keeps the newest version at-or-below the horizon (still readable by
        a snapshot at the horizon) plus everything newer.  Returns the number
        of versions removed.
        """
        idx = bisect_right(self._commit_versions, horizon_version)
        if idx <= 1:
            return 0
        removed = idx - 1
        del self._versions[:removed]
        del self._commit_versions[:removed]
        return removed
