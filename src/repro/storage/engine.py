"""The storage engine: snapshot-isolation execution over a `Database`.

This is the "standalone DBMS configured to provide snapshot isolation" that
each replica hosts in the paper's prototype.  It offers:

* ``begin()`` — start a transaction on a snapshot (by default the latest
  local version; the middleware may begin on an older *local* snapshot,
  which is what Generalized Snapshot Isolation permits);
* row reads/scans/index lookups at the transaction's snapshot, with
  read-your-own-writes;
* inserts/updates/deletes buffered into the transaction's writeset;
* ``commit()`` with **first-committer-wins** validation — used when the
  engine runs standalone.  In the replicated system the *certifier* performs
  this validation globally and the proxy calls
  :meth:`commit_certified` instead;
* ``apply_refresh()`` — install a remote transaction's writeset.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional

from .database import Database
from .errors import (
    DuplicateKeyError,
    TransactionStateError,
    UnknownRowError,
    WriteConflictError,
)
from .schema import TableSchema
from .transaction import Transaction, TxnState
from .writeset import OpKind, WriteOp, WriteSet

__all__ = ["StorageEngine"]


class StorageEngine:
    """Snapshot-isolation transaction execution over one database copy."""

    def __init__(self, database: Optional[Database] = None, name: str = "engine"):
        self.database = database if database is not None else Database()
        self.name = name
        self.commit_count = 0
        self.abort_count = 0
        self._active: dict[int, Transaction] = {}

    # -- lifecycle ----------------------------------------------------------
    def begin(self, snapshot_version: Optional[int] = None) -> Transaction:
        """Start a transaction.

        ``snapshot_version`` defaults to the latest local version.  A caller
        may pass an older version (GSI allows any locally available
        snapshot) but never a version the copy has not reached yet.
        """
        latest = self.database.version
        if snapshot_version is None:
            snapshot_version = latest
        elif snapshot_version > latest:
            raise TransactionStateError(
                f"cannot begin at v{snapshot_version}: local copy is at v{latest}"
            )
        elif snapshot_version < 0:
            raise TransactionStateError(f"invalid snapshot version {snapshot_version}")
        txn = Transaction(snapshot_version)
        self._active[txn.txn_id] = txn
        return txn

    @property
    def active_transactions(self) -> tuple[Transaction, ...]:
        """Currently active local transactions (early certification scans
        these when a refresh writeset arrives)."""
        return tuple(self._active.values())

    def oldest_active_snapshot(self) -> Optional[int]:
        """Oldest snapshot among active transactions (vacuum horizon)."""
        if not self._active:
            return None
        return min(txn.snapshot_version for txn in self._active.values())

    # -- reads --------------------------------------------------------------
    def read(self, txn: Transaction, table: str, key: Any) -> Optional[Mapping[str, Any]]:
        """Row visible to ``txn`` (its own writes first), or None.

        The buffered-read probe is inlined (one dict lookup): this is the
        single hottest storage entry point.
        """
        txn._require_active()
        op = txn._writes.get((table, key))
        txn.read_keys.add((table, key))
        if op is not None:
            return None if op.kind is OpKind.DELETE else op.values
        return self.database.table(table).read(key, txn.snapshot_version)

    def read_required(self, txn: Transaction, table: str, key: Any) -> Mapping[str, Any]:
        """Like :meth:`read` but raises :class:`UnknownRowError` on a miss."""
        values = self.read(txn, table, key)
        if values is None:
            raise UnknownRowError(table, key)
        return values

    def scan(
        self,
        txn: Transaction,
        table: str,
        predicate: Optional[Callable[[Mapping[str, Any]], bool]] = None,
        limit: Optional[int] = None,
    ) -> list[Mapping[str, Any]]:
        """Visible rows of ``table`` merged with the txn's own writes."""
        txn._require_active()
        tbl = self.database.table(table)
        pk = tbl.schema.primary_key
        ops = txn.ops_for_table(table)
        if not ops:
            # Fast path: nothing to overlay, and the table scan already
            # yields rows in key order — stream straight through without
            # building the merge dict or re-sorting.
            note_read = txn.note_read
            result = []
            for values in tbl.scan(txn.snapshot_version, predicate=None):
                note_read(table, values[pk])
                if predicate is None or predicate(values):
                    result.append(values)
                    if limit is not None and len(result) >= limit:
                        break
            return result
        rows: dict[Any, Mapping[str, Any]] = {}
        for values in tbl.scan(txn.snapshot_version, predicate=None):
            rows[values[pk]] = values
        # Overlay the transaction's buffered writes on this table.
        for op in ops:
            if op.kind is OpKind.DELETE:
                rows.pop(op.key, None)
            else:
                rows[op.key] = op.values
        result = []
        for key in sorted(rows, key=lambda k: (type(k).__name__, k)):
            values = rows[key]
            txn.note_read(table, key)
            if predicate is None or predicate(values):
                result.append(values)
                if limit is not None and len(result) >= limit:
                    break
        return result

    def lookup(self, txn: Transaction, table: str, column: str, value: Any) -> list:
        """Keys with ``column == value`` visible to ``txn`` (index-backed
        where an index exists), merged with the txn's own writes."""
        txn._require_active()
        tbl = self.database.table(table)
        matches = tbl.lookup(column, value, txn.snapshot_version)
        ops = txn.ops_for_table(table)
        if not ops:
            # Fast path: no overlay; the table's result is already sorted.
            for key in matches:
                txn.note_read(table, key)
            return matches
        keys = set(matches)
        for op in ops:
            if op.kind is OpKind.DELETE:
                keys.discard(op.key)
            elif op.values.get(column) == value:
                keys.add(op.key)
            else:
                keys.discard(op.key)
        for key in keys:
            txn.note_read(table, key)
        return sorted(keys, key=lambda k: (type(k).__name__, k))

    # -- writes -----------------------------------------------------------
    def insert(self, txn: Transaction, table: str, values: Mapping[str, Any]) -> None:
        """Buffer an insert; duplicate (visible) keys are rejected eagerly."""
        txn._require_active()
        tbl = self.database.table(table)
        tbl.schema.validate_row(values)
        key = tbl.schema.key_of(values)
        if self.read(txn, table, key) is not None:
            raise DuplicateKeyError(table, key)
        txn.buffer_write(WriteOp(table, key, OpKind.INSERT, values))

    def update(
        self, txn: Transaction, table: str, key: Any, changes: Mapping[str, Any]
    ) -> None:
        """Buffer an update of ``changes`` onto the visible row image."""
        txn._require_active()
        tbl = self.database.table(table)
        tbl.schema.validate_row(changes, partial=True)
        if tbl.schema.primary_key in changes and changes[tbl.schema.primary_key] != key:
            raise TransactionStateError("primary key update is not supported")
        current = self.read(txn, table, key)
        if current is None:
            raise UnknownRowError(table, key)
        merged = dict(current)
        merged.update(changes)
        txn.buffer_write(WriteOp(table, key, OpKind.UPDATE, merged))

    def delete(self, txn: Transaction, table: str, key: Any) -> None:
        """Buffer a delete of a visible row."""
        txn._require_active()
        if self.read(txn, table, key) is None:
            raise UnknownRowError(table, key)
        txn.buffer_write(WriteOp(table, key, OpKind.DELETE))

    # -- commit paths ----------------------------------------------------------
    def validate_first_committer_wins(self, txn: Transaction) -> None:
        """Raise :class:`WriteConflictError` if any row written by ``txn``
        was committed after the transaction's snapshot."""
        for op in txn.writeset:
            committed_at = self.database.latest_write_version(op.table, op.key)
            if committed_at > txn.snapshot_version:
                raise WriteConflictError(
                    op.table, op.key, txn.snapshot_version, committed_at
                )

    def commit(self, txn: Transaction) -> Optional[int]:
        """Standalone commit with local first-committer-wins validation.

        Returns the commit version, or None for a read-only transaction.
        On conflict the transaction is aborted and the error re-raised.
        """
        txn._require_active()
        if txn.is_read_only:
            self._finish_commit(txn, None)
            return None
        try:
            self.validate_first_committer_wins(txn)
        except WriteConflictError:
            self.abort(txn, reason="first-committer-wins conflict")
            raise
        commit_version = self.database.version + 1
        self.database.apply_writeset(txn.writeset, commit_version)
        self._finish_commit(txn, commit_version)
        return commit_version

    def commit_certified(self, txn: Transaction, commit_version: int) -> int:
        """Commit a transaction the *certifier* has already validated.

        The proxy calls this once the certifier assigns the commit version;
        all prior versions must already be applied locally (the proxy's sync
        stage guarantees that by draining the refresh queue first).
        """
        txn._require_active()
        if txn.is_read_only:
            raise TransactionStateError("read-only transactions commit locally")
        self.database.apply_writeset(txn.writeset, commit_version)
        self._finish_commit(txn, commit_version)
        return commit_version

    def commit_read_only(self, txn: Transaction) -> None:
        """Commit a read-only transaction (no version consumed)."""
        txn._require_active()
        if not txn.is_read_only:
            raise TransactionStateError("transaction has writes; not read-only")
        self._finish_commit(txn, None)

    def abort(self, txn: Transaction, reason: str = "aborted") -> None:
        """Abort a transaction, discarding its buffered writes."""
        if txn.state is TxnState.ABORTED:
            return
        txn.mark_aborted(reason)
        self._active.pop(txn.txn_id, None)
        self.abort_count += 1

    def _finish_commit(self, txn: Transaction, commit_version: Optional[int]) -> None:
        txn.mark_committed(commit_version)
        self._active.pop(txn.txn_id, None)
        self.commit_count += 1

    # -- refresh transactions ---------------------------------------------------
    def apply_refresh(self, writeset: WriteSet, commit_version: int) -> None:
        """Install a remote transaction's writeset at its global version."""
        self.database.apply_writeset(writeset, commit_version)

    # -- convenience --------------------------------------------------------
    def create_table(self, schema: TableSchema) -> None:
        """Create a table in the underlying database."""
        self.database.create_table(schema)

    @property
    def version(self) -> int:
        """The copy's committed version (``V_local``)."""
        return self.database.version
