"""Exception hierarchy for the storage engine.

All storage failures derive from :class:`StorageError` so middleware code can
catch engine-level problems in one place while letting programming errors
propagate.
"""

from __future__ import annotations

__all__ = [
    "StorageError",
    "SchemaError",
    "UnknownTableError",
    "UnknownRowError",
    "DuplicateKeyError",
    "WriteConflictError",
    "TransactionStateError",
    "TransactionAborted",
]


class StorageError(Exception):
    """Base class for all storage-engine errors."""


class SchemaError(StorageError):
    """Invalid schema definition or a value violating the schema."""


class UnknownTableError(StorageError):
    """Referenced table does not exist in the database."""

    def __init__(self, table: str):
        super().__init__(f"unknown table {table!r}")
        self.table = table


class UnknownRowError(StorageError):
    """Referenced row does not exist (or is not visible in the snapshot)."""

    def __init__(self, table: str, key):
        super().__init__(f"no visible row {key!r} in table {table!r}")
        self.table = table
        self.key = key


class DuplicateKeyError(StorageError):
    """Insert with a primary key that is already visible."""

    def __init__(self, table: str, key):
        super().__init__(f"duplicate key {key!r} in table {table!r}")
        self.table = table
        self.key = key


class WriteConflictError(StorageError):
    """First-committer-wins violation: a concurrent committed transaction
    already wrote one of this transaction's write keys."""

    def __init__(self, table: str, key, snapshot_version: int, committed_version: int):
        super().__init__(
            f"write-write conflict on {table!r}:{key!r} — "
            f"snapshot v{snapshot_version} but key committed at v{committed_version}"
        )
        self.table = table
        self.key = key
        self.snapshot_version = snapshot_version
        self.committed_version = committed_version


class TransactionStateError(StorageError):
    """Operation not permitted in the transaction's current state."""


class TransactionAborted(StorageError):
    """The transaction has been aborted (by conflict, certification or
    early-certification against a refresh writeset)."""

    def __init__(self, reason: str = "transaction aborted"):
        super().__init__(reason)
        self.reason = reason
