"""A small SQL layer: prepared statements with static table-set extraction.

The paper's fine-grained technique relies on transactions being "a sequence
of prepared statements, i.e., SQL statements that access a specific set of
tables but different records depending on the statement parameters"
(Section III-C) — the table-set is extracted *statically* from the SQL
text.  This module provides exactly that:

* a tokenizer and recursive-descent parser for the subset the benchmarks
  need::

      SELECT <cols|*> FROM <table> [WHERE <conds>] [LIMIT <n>]
      INSERT INTO <table> (<cols>) VALUES (<values>)
      UPDATE <table> SET col = <expr> [, ...] [WHERE <conds>]
      DELETE FROM <table> [WHERE <conds>]

  with ``AND``-connected comparisons (``= != < <= > >=``), literals
  (integers, floats, ``'strings'``, ``NULL``, ``TRUE``/``FALSE``) and named
  parameters ``:name``; ``SET`` expressions may be ``col + <value>`` /
  ``col - <value>`` for read-modify-write increments;

* :func:`table_set` — the static table-set of a statement list (what the
  load balancer's catalog stores);

* an executor that runs parsed statements against a transaction context,
  choosing a primary-key point read, a secondary-index lookup or a filtered
  scan, so SQL statements cost exactly what the equivalent programmatic
  template costs.
"""

from __future__ import annotations

import operator
import re
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional, Union

from .errors import StorageError

__all__ = [
    "SqlError",
    "Literal",
    "Param",
    "ColumnRef",
    "Comparison",
    "Assignment",
    "Select",
    "Insert",
    "Update",
    "Delete",
    "CompiledPlan",
    "PlanCache",
    "parse",
    "parse_script",
    "table_set",
    "execute",
    "compile_statement",
    "plan_cache",
]


class SqlError(StorageError):
    """Invalid SQL text or execution-time misuse."""


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^']|'')*')
      | (?P<number>-?\d+\.\d+|-?\d+)
      | (?P<param>:[A-Za-z_][A-Za-z0-9_]*)
      | (?P<name>[A-Za-z_][A-Za-z0-9_.]*)
      | (?P<op><=|>=|!=|<>|=|<|>)
      | (?P<punct>[(),*+\-])
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "SELECT", "FROM", "WHERE", "LIMIT", "INSERT", "INTO", "VALUES",
    "UPDATE", "SET", "DELETE", "AND", "NULL", "TRUE", "FALSE",
}


@dataclass(frozen=True)
class _Token:
    kind: str  # 'string' | 'number' | 'param' | 'name' | 'keyword' | 'op' | 'punct'
    value: str


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise SqlError(f"cannot tokenize SQL at: {remainder[:30]!r}")
        position = match.end()
        kind = match.lastgroup
        value = match.group(kind)
        if kind == "name" and value.upper() in _KEYWORDS:
            tokens.append(_Token("keyword", value.upper()))
        else:
            tokens.append(_Token(kind, value))
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Literal:
    """A constant value in the SQL text."""

    value: Any

    def resolve(self, params: Mapping[str, Any]) -> Any:
        return self.value


@dataclass(frozen=True)
class Param:
    """A named parameter ``:name`` bound at execution time."""

    name: str

    def resolve(self, params: Mapping[str, Any]) -> Any:
        try:
            return params[self.name]
        except KeyError:
            raise SqlError(f"missing parameter :{self.name}") from None


Value = Union[Literal, Param]


@dataclass(frozen=True)
class ColumnRef:
    """A bare column reference (used in SET expressions)."""

    name: str


@dataclass(frozen=True)
class Comparison:
    """``column <op> value`` in a WHERE clause."""

    column: str
    op: str  # '=', '!=', '<', '<=', '>', '>='
    value: Value

    def matches(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> bool:
        actual = row.get(self.column)
        expected = self.value.resolve(params)
        if self.op == "=":
            return actual == expected
        if self.op == "!=":
            return actual != expected
        if actual is None or expected is None:
            return False
        if self.op == "<":
            return actual < expected
        if self.op == "<=":
            return actual <= expected
        if self.op == ">":
            return actual > expected
        return actual >= expected


@dataclass(frozen=True)
class Assignment:
    """``col = value`` or ``col = col +/- value`` in a SET clause."""

    column: str
    value: Value
    base: Optional[ColumnRef] = None
    sign: int = 0  # +1 / -1 when base is set

    def compute(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> Any:
        resolved = self.value.resolve(params)
        if self.base is None:
            return resolved
        current = row.get(self.base.name)
        if current is None:
            raise SqlError(f"column {self.base.name!r} is NULL in increment")
        return current + self.sign * resolved


@dataclass(frozen=True)
class Select:
    """``SELECT cols FROM table [WHERE ...] [LIMIT n]``"""

    table: str
    columns: Optional[tuple[str, ...]]  # None = '*'
    where: tuple[Comparison, ...] = ()
    limit: Optional[int] = None

    @property
    def tables(self) -> frozenset[str]:
        return frozenset({self.table})

    @property
    def is_update(self) -> bool:
        return False


@dataclass(frozen=True)
class Insert:
    """``INSERT INTO table (cols) VALUES (vals)``"""

    table: str
    columns: tuple[str, ...]
    values: tuple[Value, ...]

    def __post_init__(self):
        if len(self.columns) != len(self.values):
            raise SqlError(
                f"INSERT into {self.table!r}: {len(self.columns)} columns "
                f"but {len(self.values)} values"
            )

    @property
    def tables(self) -> frozenset[str]:
        return frozenset({self.table})

    @property
    def is_update(self) -> bool:
        return True


@dataclass(frozen=True)
class Update:
    """``UPDATE table SET ... [WHERE ...]``"""

    table: str
    assignments: tuple[Assignment, ...]
    where: tuple[Comparison, ...] = ()

    @property
    def tables(self) -> frozenset[str]:
        return frozenset({self.table})

    @property
    def is_update(self) -> bool:
        return True


@dataclass(frozen=True)
class Delete:
    """``DELETE FROM table [WHERE ...]``"""

    table: str
    where: tuple[Comparison, ...] = ()

    @property
    def tables(self) -> frozenset[str]:
        return frozenset({self.table})

    @property
    def is_update(self) -> bool:
        return True


Statement = Union[Select, Insert, Update, Delete]


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

class _Parser:
    def __init__(self, tokens: list[_Token], text: str):
        self.tokens = tokens
        self.text = text
        self.position = 0

    # -- token helpers -----------------------------------------------------
    def _peek(self) -> Optional[_Token]:
        return self.tokens[self.position] if self.position < len(self.tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise SqlError(f"unexpected end of SQL: {self.text!r}")
        self.position += 1
        return token

    def _expect_keyword(self, keyword: str) -> None:
        token = self._next()
        if token.kind != "keyword" or token.value != keyword:
            raise SqlError(f"expected {keyword}, got {token.value!r} in {self.text!r}")

    def _accept_keyword(self, keyword: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "keyword" and token.value == keyword:
            self.position += 1
            return True
        return False

    def _expect_punct(self, punct: str) -> None:
        token = self._next()
        if token.kind != "punct" or token.value != punct:
            raise SqlError(f"expected {punct!r}, got {token.value!r} in {self.text!r}")

    def _accept_punct(self, punct: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "punct" and token.value == punct:
            self.position += 1
            return True
        return False

    def _expect_name(self) -> str:
        token = self._next()
        if token.kind != "name":
            raise SqlError(f"expected identifier, got {token.value!r} in {self.text!r}")
        return token.value

    # -- grammar -------------------------------------------------------------
    def parse_statement(self) -> Statement:
        token = self._peek()
        if token is None:
            raise SqlError("empty SQL statement")
        if token.kind != "keyword":
            raise SqlError(f"SQL must start with a verb, got {token.value!r}")
        verb = token.value
        if verb == "SELECT":
            statement = self._select()
        elif verb == "INSERT":
            statement = self._insert()
        elif verb == "UPDATE":
            statement = self._update()
        elif verb == "DELETE":
            statement = self._delete()
        else:
            raise SqlError(f"unsupported SQL verb {verb!r}")
        if self._peek() is not None:
            raise SqlError(f"trailing tokens after statement in {self.text!r}")
        return statement

    def _select(self) -> Select:
        self._expect_keyword("SELECT")
        columns: Optional[tuple[str, ...]]
        if self._accept_punct("*"):
            columns = None
        else:
            names = [self._expect_name()]
            while self._accept_punct(","):
                names.append(self._expect_name())
            columns = tuple(names)
        self._expect_keyword("FROM")
        table = self._expect_name()
        where = self._where_opt()
        limit = None
        if self._accept_keyword("LIMIT"):
            token = self._next()
            if token.kind != "number" or "." in token.value:
                raise SqlError(f"LIMIT requires an integer, got {token.value!r}")
            limit = int(token.value)
            if limit < 0:
                raise SqlError("LIMIT must be non-negative")
        return Select(table=table, columns=columns, where=where, limit=limit)

    def _insert(self) -> Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_name()
        self._expect_punct("(")
        columns = [self._expect_name()]
        while self._accept_punct(","):
            columns.append(self._expect_name())
        self._expect_punct(")")
        self._expect_keyword("VALUES")
        self._expect_punct("(")
        values = [self._value()]
        while self._accept_punct(","):
            values.append(self._value())
        self._expect_punct(")")
        return Insert(table=table, columns=tuple(columns), values=tuple(values))

    def _update(self) -> Update:
        self._expect_keyword("UPDATE")
        table = self._expect_name()
        self._expect_keyword("SET")
        assignments = [self._assignment()]
        while self._accept_punct(","):
            assignments.append(self._assignment())
        where = self._where_opt()
        return Update(table=table, assignments=tuple(assignments), where=where)

    def _delete(self) -> Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_name()
        return Delete(table=table, where=self._where_opt())

    def _assignment(self) -> Assignment:
        column = self._expect_name()
        token = self._next()
        if token.kind != "op" or token.value != "=":
            raise SqlError(f"expected '=' in assignment, got {token.value!r}")
        # Either a plain value, or `col (+|-) value`.
        peek = self._peek()
        if peek is not None and peek.kind == "name":
            base = ColumnRef(self._expect_name())
            sign_token = self._next()
            if sign_token.kind != "punct" or sign_token.value not in "+-":
                raise SqlError(
                    f"expected '+' or '-' after column in assignment, "
                    f"got {sign_token.value!r}"
                )
            value = self._value()
            return Assignment(
                column=column, value=value, base=base,
                sign=1 if sign_token.value == "+" else -1,
            )
        return Assignment(column=column, value=self._value())

    def _where_opt(self) -> tuple[Comparison, ...]:
        if not self._accept_keyword("WHERE"):
            return ()
        comparisons = [self._comparison()]
        while self._accept_keyword("AND"):
            comparisons.append(self._comparison())
        return tuple(comparisons)

    def _comparison(self) -> Comparison:
        column = self._expect_name()
        token = self._next()
        if token.kind != "op":
            raise SqlError(f"expected comparison operator, got {token.value!r}")
        op = "!=" if token.value == "<>" else token.value
        return Comparison(column=column, op=op, value=self._value())

    def _value(self) -> Value:
        token = self._next()
        if token.kind == "param":
            return Param(token.value[1:])
        if token.kind == "number":
            return Literal(float(token.value) if "." in token.value else int(token.value))
        if token.kind == "string":
            return Literal(token.value[1:-1].replace("''", "'"))
        if token.kind == "keyword" and token.value == "NULL":
            return Literal(None)
        if token.kind == "keyword" and token.value in ("TRUE", "FALSE"):
            return Literal(token.value == "TRUE")
        raise SqlError(f"expected a value, got {token.value!r} in {self.text!r}")


def parse(text: str) -> Statement:
    """Parse one SQL statement."""
    return _Parser(_tokenize(text), text).parse_statement()


def parse_script(statements: Iterable[str]) -> tuple[Statement, ...]:
    """Parse a sequence of SQL statements (a prepared transaction body).

    Parsing goes through the process-wide plan cache, so each distinct
    statement text is parsed exactly once no matter how many workload
    instances (one per simulated client) share the same template."""
    return tuple(_PLAN_CACHE.get(text).statement for text in statements)


def table_set(statements: Iterable[Union[str, Statement]]) -> frozenset[str]:
    """The static table-set of a statement list — Section III-C's
    "statically extract the table-set that the transaction accesses"."""
    tables: set[str] = set()
    for statement in statements:
        parsed = parse(statement) if isinstance(statement, str) else statement
        tables |= parsed.tables
    return frozenset(tables)


# ---------------------------------------------------------------------------
# Compiled plans
# ---------------------------------------------------------------------------

def _compile_comparison(comparison: Comparison):
    """Compile one comparison into a ``pred(row, params) -> bool`` closure.

    Semantics match :meth:`Comparison.matches` exactly: ``=``/``!=`` use
    plain equality (NULL included), ordered operators never match when
    either side is NULL.  Literal operands are folded into the closure so
    no per-row resolution happens.
    """
    column = comparison.column
    op = comparison.op
    value = comparison.value
    if isinstance(value, Literal):
        const = value.value
        if op == "=":
            return lambda row, params: row.get(column) == const
        if op == "!=":
            return lambda row, params: row.get(column) != const
        if const is None:
            return lambda row, params: False
        if op == "<":
            return lambda row, params: (a := row.get(column)) is not None and a < const
        if op == "<=":
            return lambda row, params: (a := row.get(column)) is not None and a <= const
        if op == ">":
            return lambda row, params: (a := row.get(column)) is not None and a > const
        return lambda row, params: (a := row.get(column)) is not None and a >= const
    # Param: inline the lookup (and its missing-parameter error) instead of
    # going through the bound ``resolve`` method on every row.
    name = value.name
    if op == "=":
        def eq(row, params):
            try:
                expected = params[name]
            except KeyError:
                raise SqlError(f"missing parameter :{name}") from None
            return row.get(column) == expected

        return eq
    if op == "!=":
        def ne(row, params):
            try:
                expected = params[name]
            except KeyError:
                raise SqlError(f"missing parameter :{name}") from None
            return row.get(column) != expected

        return ne
    cmp = _ORDERED_OPS[op]

    def ordered(row, params):
        try:
            expected = params[name]
        except KeyError:
            raise SqlError(f"missing parameter :{name}") from None
        actual = row.get(column)
        if actual is None or expected is None:
            return False
        return cmp(actual, expected)

    return ordered


_ORDERED_OPS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _compile_where(where: tuple[Comparison, ...]):
    """Compile a WHERE clause into one residual predicate, or None when
    the clause is empty (so scans can skip the call entirely)."""
    if not where:
        return None
    predicates = tuple(_compile_comparison(c) for c in where)
    if len(predicates) == 1:
        return predicates[0]
    if len(predicates) == 2:
        first, second = predicates
        return lambda row, params: first(row, params) and second(row, params)

    def residual(row, params):
        for predicate in predicates:
            if not predicate(row, params):
                return False
        return True

    return residual


class CompiledPlan:
    """A statement compiled for repeated execution.

    Compilation hoists everything that does not depend on the bound
    parameters out of the per-call path: the WHERE clause becomes a single
    closure chain (:func:`_compile_where`), and access-path selection
    (primary-key point read vs secondary-index lookup vs filtered scan) is
    resolved once per schema and cached behind an identity check — the
    plan cache is keyed by statement text alone, so the same plan can meet
    different schemas for the same table name across databases.
    """

    __slots__ = (
        "statement",
        "text",
        "table",
        "_residual",
        "_schema",
        "_pk_value",
        "_index_column",
        "_index_value",
    )

    def __init__(self, statement: Statement, text: Optional[str] = None):
        self.statement = statement
        self.text = text
        self.table = statement.table
        self._residual = _compile_where(getattr(statement, "where", ()))
        self._schema = None
        self._pk_value: Optional[Value] = None
        self._index_column: Optional[str] = None
        self._index_value: Optional[Value] = None

    def _bind(self, schema) -> None:
        """Pick the access path for ``schema`` (identity-cached)."""
        where = getattr(self.statement, "where", ())
        self._pk_value = None
        for comparison in where:
            if comparison.op == "=" and comparison.column == schema.primary_key:
                self._pk_value = comparison.value
                break
        self._index_column = None
        self._index_value = None
        for comparison in where:
            if comparison.op == "=" and comparison.column in schema.indexes:
                self._index_column = comparison.column
                self._index_value = comparison.value
                break
        self._schema = schema

    def _rows(self, ctx, params, copy: bool) -> list:
        """Rows matching the WHERE clause via the cheapest access path.

        With ``copy`` the returned rows are fresh dicts (safe to hand out
        or mutate); otherwise they are the context's own row mappings —
        callers must not retain or modify them.
        """
        table = self.table
        schema = ctx.schema(table)
        if schema is not self._schema:
            self._bind(schema)
        residual = self._residual
        if self._pk_value is not None:
            key = self._pk_value.resolve(params)
            if key is not None:
                row = ctx.read(table, key)
                if row is None or (residual is not None and not residual(row, params)):
                    return []
                return [dict(row)] if copy else [row]
        if self._index_column is not None:
            value = self._index_value.resolve(params)
            rows = []
            for key in ctx.lookup(table, self._index_column, value):
                row = ctx.read(table, key)
                if row is not None and (residual is None or residual(row, params)):
                    rows.append(dict(row) if copy else row)
            return rows
        predicate = None
        if residual is not None:
            def predicate(row):
                return residual(row, params)
        if copy:
            return [dict(r) for r in ctx.scan(table, predicate=predicate)]
        return list(ctx.scan(table, predicate=predicate))

    def execute(self, ctx, params: Optional[Mapping[str, Any]] = None):
        raise NotImplementedError


class _SelectPlan(CompiledPlan):
    __slots__ = ("_columns", "_limit")

    def __init__(self, statement: Select, text: Optional[str] = None):
        super().__init__(statement, text)
        self._columns = statement.columns
        self._limit = statement.limit

    def execute(self, ctx, params: Optional[Mapping[str, Any]] = None):
        params = params if params is not None else {}
        # Read-only: project straight off the context's row mappings, no
        # intermediate dict(row) copy per matching row.
        rows = self._rows(ctx, params, copy=False)
        if self._limit is not None:
            rows = rows[: self._limit]
        columns = self._columns
        if columns is None:
            return [dict(row) for row in rows]
        return [{column: row.get(column) for column in columns} for row in rows]


class _InsertPlan(CompiledPlan):
    __slots__ = ("_pairs",)

    def __init__(self, statement: Insert, text: Optional[str] = None):
        super().__init__(statement, text)
        self._pairs = tuple(
            (column, value.resolve)
            for column, value in zip(statement.columns, statement.values)
        )

    def execute(self, ctx, params: Optional[Mapping[str, Any]] = None):
        params = params if params is not None else {}
        ctx.insert(self.table, {column: resolve(params) for column, resolve in self._pairs})
        return 1


class _UpdatePlan(CompiledPlan):
    __slots__ = ("_assignments",)

    def __init__(self, statement: Update, text: Optional[str] = None):
        super().__init__(statement, text)
        self._assignments = tuple(
            (assignment.column, assignment.compute)
            for assignment in statement.assignments
        )

    def execute(self, ctx, params: Optional[Mapping[str, Any]] = None):
        params = params if params is not None else {}
        rows = self._rows(ctx, params, copy=True)
        primary_key = self._schema.primary_key
        for row in rows:
            changes = {
                column: compute(row, params) for column, compute in self._assignments
            }
            ctx.update(self.table, row[primary_key], changes)
        return len(rows)


class _DeletePlan(CompiledPlan):
    __slots__ = ()

    def execute(self, ctx, params: Optional[Mapping[str, Any]] = None):
        params = params if params is not None else {}
        rows = self._rows(ctx, params, copy=True)
        primary_key = self._schema.primary_key
        for row in rows:
            ctx.delete(self.table, row[primary_key])
        return len(rows)


def _compile(statement: Statement, text: Optional[str] = None) -> CompiledPlan:
    if isinstance(statement, Select):
        return _SelectPlan(statement, text)
    if isinstance(statement, Insert):
        return _InsertPlan(statement, text)
    if isinstance(statement, Update):
        return _UpdatePlan(statement, text)
    if isinstance(statement, Delete):
        return _DeletePlan(statement, text)
    raise SqlError(f"unsupported statement type {type(statement).__name__}")


class PlanCache:
    """LRU cache of compiled plans keyed by statement text.

    Statement texts in the benchmarks are prepared templates — a handful of
    distinct strings executed millions of times — so the cache turns
    per-call parsing and predicate interpretation into a dict hit.  Parsed
    :class:`Statement` ASTs are accepted as keys too (they are frozen and
    hashable), so pre-parsed callers share plans the same way.  ``capacity``
    may be adjusted at runtime; eviction applies on the next insert.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise SqlError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._plans: "OrderedDict[Any, CompiledPlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._plans)

    def get(self, statement: Union[str, Statement]) -> CompiledPlan:
        """The compiled plan for ``statement``, compiling on first sight."""
        plans = self._plans
        try:
            plan = plans.get(statement)
        except TypeError:
            # Unhashable AST (programmatically built Literal holding a
            # mutable value): compile without caching.
            return _compile(statement)
        if plan is not None:
            plans.move_to_end(statement)
            self.hits += 1
            return plan
        self.misses += 1
        if isinstance(statement, str):
            plan = _compile(parse(statement), statement)
        else:
            plan = _compile(statement)
        plans[statement] = plan
        while len(plans) > self.capacity:
            plans.popitem(last=False)
            self.evictions += 1
        return plan

    def clear(self) -> None:
        """Drop all cached plans and reset the counters."""
        self._plans.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> dict:
        """Cache effectiveness counters (surfaced in cluster stats)."""
        return {
            "size": len(self._plans),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


#: process-wide plan cache: every replica in a simulated cluster shares it,
#: so each distinct statement text is parsed and compiled exactly once
_PLAN_CACHE = PlanCache()


def plan_cache() -> PlanCache:
    """The process-wide plan cache (shared by all clusters/replicas)."""
    return _PLAN_CACHE


def compile_statement(statement: Union[str, Statement]) -> CompiledPlan:
    """The (cached) compiled plan for a statement text or parsed AST."""
    return _PLAN_CACHE.get(statement)


# ---------------------------------------------------------------------------
# Execution against a transaction context
# ---------------------------------------------------------------------------

def execute(ctx, statement: Union[str, Statement], params: Optional[Mapping[str, Any]] = None):
    """Execute one statement against a transaction context.

    Returns a list of row dicts for SELECT and the affected-row count for
    INSERT/UPDATE/DELETE.  The context's usual statement costs and early
    certification apply, because execution goes through the context's own
    read/lookup/scan/insert/update/delete methods.  Plans are compiled and
    cached per statement text (see :class:`PlanCache`), so repeated calls
    skip parsing, predicate interpretation and access-path selection.
    """
    return _PLAN_CACHE.get(statement).execute(ctx, params)
