"""A small SQL layer: prepared statements with static table-set extraction.

The paper's fine-grained technique relies on transactions being "a sequence
of prepared statements, i.e., SQL statements that access a specific set of
tables but different records depending on the statement parameters"
(Section III-C) — the table-set is extracted *statically* from the SQL
text.  This module provides exactly that:

* a tokenizer and recursive-descent parser for the subset the benchmarks
  need::

      SELECT <cols|*> FROM <table> [WHERE <conds>] [LIMIT <n>]
      INSERT INTO <table> (<cols>) VALUES (<values>)
      UPDATE <table> SET col = <expr> [, ...] [WHERE <conds>]
      DELETE FROM <table> [WHERE <conds>]

  with ``AND``-connected comparisons (``= != < <= > >=``), literals
  (integers, floats, ``'strings'``, ``NULL``, ``TRUE``/``FALSE``) and named
  parameters ``:name``; ``SET`` expressions may be ``col + <value>`` /
  ``col - <value>`` for read-modify-write increments;

* :func:`table_set` — the static table-set of a statement list (what the
  load balancer's catalog stores);

* an executor that runs parsed statements against a transaction context,
  choosing a primary-key point read, a secondary-index lookup or a filtered
  scan, so SQL statements cost exactly what the equivalent programmatic
  template costs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional, Union

from .errors import StorageError

__all__ = [
    "SqlError",
    "Literal",
    "Param",
    "ColumnRef",
    "Comparison",
    "Assignment",
    "Select",
    "Insert",
    "Update",
    "Delete",
    "parse",
    "parse_script",
    "table_set",
    "execute",
]


class SqlError(StorageError):
    """Invalid SQL text or execution-time misuse."""


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^']|'')*')
      | (?P<number>-?\d+\.\d+|-?\d+)
      | (?P<param>:[A-Za-z_][A-Za-z0-9_]*)
      | (?P<name>[A-Za-z_][A-Za-z0-9_.]*)
      | (?P<op><=|>=|!=|<>|=|<|>)
      | (?P<punct>[(),*+\-])
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "SELECT", "FROM", "WHERE", "LIMIT", "INSERT", "INTO", "VALUES",
    "UPDATE", "SET", "DELETE", "AND", "NULL", "TRUE", "FALSE",
}


@dataclass(frozen=True)
class _Token:
    kind: str  # 'string' | 'number' | 'param' | 'name' | 'keyword' | 'op' | 'punct'
    value: str


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise SqlError(f"cannot tokenize SQL at: {remainder[:30]!r}")
        position = match.end()
        kind = match.lastgroup
        value = match.group(kind)
        if kind == "name" and value.upper() in _KEYWORDS:
            tokens.append(_Token("keyword", value.upper()))
        else:
            tokens.append(_Token(kind, value))
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Literal:
    """A constant value in the SQL text."""

    value: Any

    def resolve(self, params: Mapping[str, Any]) -> Any:
        return self.value


@dataclass(frozen=True)
class Param:
    """A named parameter ``:name`` bound at execution time."""

    name: str

    def resolve(self, params: Mapping[str, Any]) -> Any:
        try:
            return params[self.name]
        except KeyError:
            raise SqlError(f"missing parameter :{self.name}") from None


Value = Union[Literal, Param]


@dataclass(frozen=True)
class ColumnRef:
    """A bare column reference (used in SET expressions)."""

    name: str


@dataclass(frozen=True)
class Comparison:
    """``column <op> value`` in a WHERE clause."""

    column: str
    op: str  # '=', '!=', '<', '<=', '>', '>='
    value: Value

    def matches(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> bool:
        actual = row.get(self.column)
        expected = self.value.resolve(params)
        if self.op == "=":
            return actual == expected
        if self.op == "!=":
            return actual != expected
        if actual is None or expected is None:
            return False
        if self.op == "<":
            return actual < expected
        if self.op == "<=":
            return actual <= expected
        if self.op == ">":
            return actual > expected
        return actual >= expected


@dataclass(frozen=True)
class Assignment:
    """``col = value`` or ``col = col +/- value`` in a SET clause."""

    column: str
    value: Value
    base: Optional[ColumnRef] = None
    sign: int = 0  # +1 / -1 when base is set

    def compute(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> Any:
        resolved = self.value.resolve(params)
        if self.base is None:
            return resolved
        current = row.get(self.base.name)
        if current is None:
            raise SqlError(f"column {self.base.name!r} is NULL in increment")
        return current + self.sign * resolved


@dataclass(frozen=True)
class Select:
    """``SELECT cols FROM table [WHERE ...] [LIMIT n]``"""

    table: str
    columns: Optional[tuple[str, ...]]  # None = '*'
    where: tuple[Comparison, ...] = ()
    limit: Optional[int] = None

    @property
    def tables(self) -> frozenset[str]:
        return frozenset({self.table})

    @property
    def is_update(self) -> bool:
        return False


@dataclass(frozen=True)
class Insert:
    """``INSERT INTO table (cols) VALUES (vals)``"""

    table: str
    columns: tuple[str, ...]
    values: tuple[Value, ...]

    def __post_init__(self):
        if len(self.columns) != len(self.values):
            raise SqlError(
                f"INSERT into {self.table!r}: {len(self.columns)} columns "
                f"but {len(self.values)} values"
            )

    @property
    def tables(self) -> frozenset[str]:
        return frozenset({self.table})

    @property
    def is_update(self) -> bool:
        return True


@dataclass(frozen=True)
class Update:
    """``UPDATE table SET ... [WHERE ...]``"""

    table: str
    assignments: tuple[Assignment, ...]
    where: tuple[Comparison, ...] = ()

    @property
    def tables(self) -> frozenset[str]:
        return frozenset({self.table})

    @property
    def is_update(self) -> bool:
        return True


@dataclass(frozen=True)
class Delete:
    """``DELETE FROM table [WHERE ...]``"""

    table: str
    where: tuple[Comparison, ...] = ()

    @property
    def tables(self) -> frozenset[str]:
        return frozenset({self.table})

    @property
    def is_update(self) -> bool:
        return True


Statement = Union[Select, Insert, Update, Delete]


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

class _Parser:
    def __init__(self, tokens: list[_Token], text: str):
        self.tokens = tokens
        self.text = text
        self.position = 0

    # -- token helpers -----------------------------------------------------
    def _peek(self) -> Optional[_Token]:
        return self.tokens[self.position] if self.position < len(self.tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise SqlError(f"unexpected end of SQL: {self.text!r}")
        self.position += 1
        return token

    def _expect_keyword(self, keyword: str) -> None:
        token = self._next()
        if token.kind != "keyword" or token.value != keyword:
            raise SqlError(f"expected {keyword}, got {token.value!r} in {self.text!r}")

    def _accept_keyword(self, keyword: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "keyword" and token.value == keyword:
            self.position += 1
            return True
        return False

    def _expect_punct(self, punct: str) -> None:
        token = self._next()
        if token.kind != "punct" or token.value != punct:
            raise SqlError(f"expected {punct!r}, got {token.value!r} in {self.text!r}")

    def _accept_punct(self, punct: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "punct" and token.value == punct:
            self.position += 1
            return True
        return False

    def _expect_name(self) -> str:
        token = self._next()
        if token.kind != "name":
            raise SqlError(f"expected identifier, got {token.value!r} in {self.text!r}")
        return token.value

    # -- grammar -------------------------------------------------------------
    def parse_statement(self) -> Statement:
        token = self._peek()
        if token is None:
            raise SqlError("empty SQL statement")
        if token.kind != "keyword":
            raise SqlError(f"SQL must start with a verb, got {token.value!r}")
        verb = token.value
        if verb == "SELECT":
            statement = self._select()
        elif verb == "INSERT":
            statement = self._insert()
        elif verb == "UPDATE":
            statement = self._update()
        elif verb == "DELETE":
            statement = self._delete()
        else:
            raise SqlError(f"unsupported SQL verb {verb!r}")
        if self._peek() is not None:
            raise SqlError(f"trailing tokens after statement in {self.text!r}")
        return statement

    def _select(self) -> Select:
        self._expect_keyword("SELECT")
        columns: Optional[tuple[str, ...]]
        if self._accept_punct("*"):
            columns = None
        else:
            names = [self._expect_name()]
            while self._accept_punct(","):
                names.append(self._expect_name())
            columns = tuple(names)
        self._expect_keyword("FROM")
        table = self._expect_name()
        where = self._where_opt()
        limit = None
        if self._accept_keyword("LIMIT"):
            token = self._next()
            if token.kind != "number" or "." in token.value:
                raise SqlError(f"LIMIT requires an integer, got {token.value!r}")
            limit = int(token.value)
            if limit < 0:
                raise SqlError("LIMIT must be non-negative")
        return Select(table=table, columns=columns, where=where, limit=limit)

    def _insert(self) -> Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_name()
        self._expect_punct("(")
        columns = [self._expect_name()]
        while self._accept_punct(","):
            columns.append(self._expect_name())
        self._expect_punct(")")
        self._expect_keyword("VALUES")
        self._expect_punct("(")
        values = [self._value()]
        while self._accept_punct(","):
            values.append(self._value())
        self._expect_punct(")")
        return Insert(table=table, columns=tuple(columns), values=tuple(values))

    def _update(self) -> Update:
        self._expect_keyword("UPDATE")
        table = self._expect_name()
        self._expect_keyword("SET")
        assignments = [self._assignment()]
        while self._accept_punct(","):
            assignments.append(self._assignment())
        where = self._where_opt()
        return Update(table=table, assignments=tuple(assignments), where=where)

    def _delete(self) -> Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_name()
        return Delete(table=table, where=self._where_opt())

    def _assignment(self) -> Assignment:
        column = self._expect_name()
        token = self._next()
        if token.kind != "op" or token.value != "=":
            raise SqlError(f"expected '=' in assignment, got {token.value!r}")
        # Either a plain value, or `col (+|-) value`.
        peek = self._peek()
        if peek is not None and peek.kind == "name":
            base = ColumnRef(self._expect_name())
            sign_token = self._next()
            if sign_token.kind != "punct" or sign_token.value not in "+-":
                raise SqlError(
                    f"expected '+' or '-' after column in assignment, "
                    f"got {sign_token.value!r}"
                )
            value = self._value()
            return Assignment(
                column=column, value=value, base=base,
                sign=1 if sign_token.value == "+" else -1,
            )
        return Assignment(column=column, value=self._value())

    def _where_opt(self) -> tuple[Comparison, ...]:
        if not self._accept_keyword("WHERE"):
            return ()
        comparisons = [self._comparison()]
        while self._accept_keyword("AND"):
            comparisons.append(self._comparison())
        return tuple(comparisons)

    def _comparison(self) -> Comparison:
        column = self._expect_name()
        token = self._next()
        if token.kind != "op":
            raise SqlError(f"expected comparison operator, got {token.value!r}")
        op = "!=" if token.value == "<>" else token.value
        return Comparison(column=column, op=op, value=self._value())

    def _value(self) -> Value:
        token = self._next()
        if token.kind == "param":
            return Param(token.value[1:])
        if token.kind == "number":
            return Literal(float(token.value) if "." in token.value else int(token.value))
        if token.kind == "string":
            return Literal(token.value[1:-1].replace("''", "'"))
        if token.kind == "keyword" and token.value == "NULL":
            return Literal(None)
        if token.kind == "keyword" and token.value in ("TRUE", "FALSE"):
            return Literal(token.value == "TRUE")
        raise SqlError(f"expected a value, got {token.value!r} in {self.text!r}")


def parse(text: str) -> Statement:
    """Parse one SQL statement."""
    return _Parser(_tokenize(text), text).parse_statement()


def parse_script(statements: Iterable[str]) -> tuple[Statement, ...]:
    """Parse a sequence of SQL statements (a prepared transaction body)."""
    return tuple(parse(text) for text in statements)


def table_set(statements: Iterable[Union[str, Statement]]) -> frozenset[str]:
    """The static table-set of a statement list — Section III-C's
    "statically extract the table-set that the transaction accesses"."""
    tables: set[str] = set()
    for statement in statements:
        parsed = parse(statement) if isinstance(statement, str) else statement
        tables |= parsed.tables
    return frozenset(tables)


# ---------------------------------------------------------------------------
# Execution against a transaction context
# ---------------------------------------------------------------------------

def _pk_equality(where, schema, params) -> Optional[Any]:
    """The primary-key value when the WHERE clause pins it, else None."""
    for comparison in where:
        if comparison.op == "=" and comparison.column == schema.primary_key:
            return comparison.value.resolve(params)
    return None


def _indexed_equality(where, schema, params) -> Optional[tuple[str, Any]]:
    """An (indexed column, value) pair usable for an index lookup."""
    for comparison in where:
        if comparison.op == "=" and comparison.column in schema.indexes:
            return comparison.column, comparison.value.resolve(params)
    return None


def _project(row: Mapping[str, Any], columns) -> dict:
    if columns is None:
        return dict(row)
    return {column: row.get(column) for column in columns}


def _matching_rows(ctx, statement, params) -> list[dict]:
    """Rows matching a WHERE clause, via the cheapest access path."""
    schema = ctx.schema(statement.table)
    where = statement.where

    def residual(row) -> bool:
        return all(c.matches(row, params) for c in where)

    key = _pk_equality(where, schema, params)
    if key is not None:
        row = ctx.read(statement.table, key)
        return [dict(row)] if row is not None and residual(row) else []
    indexed = _indexed_equality(where, schema, params)
    if indexed is not None:
        column, value = indexed
        keys = ctx.lookup(statement.table, column, value)
        rows = []
        for k in keys:
            row = ctx.read(statement.table, k)
            if row is not None and residual(row):
                rows.append(dict(row))
        return rows
    return [dict(r) for r in ctx.scan(statement.table, predicate=residual)]


def execute(ctx, statement: Union[str, Statement], params: Optional[Mapping[str, Any]] = None):
    """Execute one statement against a transaction context.

    Returns a list of row dicts for SELECT and the affected-row count for
    INSERT/UPDATE/DELETE.  The context's usual statement costs and early
    certification apply, because execution goes through the context's own
    read/lookup/scan/insert/update/delete methods.
    """
    parsed = parse(statement) if isinstance(statement, str) else statement
    params = dict(params or {})

    if isinstance(parsed, Select):
        rows = _matching_rows(ctx, parsed, params)
        if parsed.limit is not None:
            rows = rows[: parsed.limit]
        return [_project(row, parsed.columns) for row in rows]

    if isinstance(parsed, Insert):
        values = {
            column: value.resolve(params)
            for column, value in zip(parsed.columns, parsed.values)
        }
        ctx.insert(parsed.table, values)
        return 1

    if isinstance(parsed, Update):
        schema = ctx.schema(parsed.table)
        rows = _matching_rows(ctx, parsed, params)
        for row in rows:
            changes = {
                a.column: a.compute(row, params) for a in parsed.assignments
            }
            ctx.update(parsed.table, row[schema.primary_key], changes)
        return len(rows)

    if isinstance(parsed, Delete):
        schema = ctx.schema(parsed.table)
        rows = _matching_rows(ctx, parsed, params)
        for row in rows:
            ctx.delete(parsed.table, row[schema.primary_key])
        return len(rows)

    raise SqlError(f"unsupported statement type {type(parsed).__name__}")
