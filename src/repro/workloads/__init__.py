"""Workloads: transaction templates, clients and the two benchmarks."""

from .base import TemplateCatalog, TransactionTemplate, TxnCall, Workload, sql_template
from .clients import ClientPool
from .microbench import MicroBenchmark
from .tpcc import TPCCBenchmark
from .tpcw import MIXES, MIX_UPDATE_FRACTION, TPCWBenchmark
from .trace import TraceRecorder, TraceWorkload

__all__ = [
    "ClientPool",
    "MIXES",
    "MIX_UPDATE_FRACTION",
    "MicroBenchmark",
    "TPCCBenchmark",
    "TPCWBenchmark",
    "TemplateCatalog",
    "TraceRecorder",
    "TraceWorkload",
    "TransactionTemplate",
    "TxnCall",
    "Workload",
    "sql_template",
]
