"""Closed-loop clients — the remote terminal emulator (RTE).

The paper drives the system with a multi-threaded RTE in which each thread
represents one client issuing requests in a closed loop: submit a
transaction, wait for the outcome, think, repeat.  Each client is one
simulation process here.  A client's identifier doubles as its session
identifier — the SESSION configuration tracks versions per client, exactly
as in the paper.
"""

from __future__ import annotations

from typing import Optional

from ..metrics.collector import MetricsCollector, TxnSample
from ..metrics.tracing import TRACER
from ..middleware.messages import ClientRequest, next_request_id
from ..middleware.overload import RetryBudget
from ..sim.kernel import Environment, Event
from ..sim.network import Network
from ..sim.rng import RngRegistry
from .base import Workload

__all__ = ["ClientPool", "OpenLoopLoad", "backoff_delay_ms"]


def backoff_delay_ms(
    base_ms: float,
    attempt: int,
    rng=None,
    multiplier: float = 2.0,
    cap_ms: float = 100.0,
    jitter: float = 0.5,
) -> float:
    """Exponential retry backoff with jitter and a cap.

    ``base_ms * multiplier**(attempt-1)``, capped at ``cap_ms``, then
    reduced by up to ``jitter`` (fraction) of itself — full-jitter style, so
    a burst of clients aborted by the same conflict doesn't retry in
    lockstep and recreate the conflict.  ``attempt`` counts from 1 (the
    first retry).
    """
    if attempt < 1:
        raise ValueError("attempt counts from 1")
    if not 0.0 <= jitter <= 1.0:
        raise ValueError("jitter must be within [0, 1]")
    delay = min(base_ms * multiplier ** (attempt - 1), cap_ms)
    if rng is not None and jitter > 0:
        delay *= 1.0 - jitter * rng.random()
    return delay


class ClientPool:
    """Spawns and owns the closed-loop client processes of one run."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        workload: Workload,
        collector: MetricsCollector,
        balancer_name: str = "lb",
        rngs: Optional[RngRegistry] = None,
        retry_aborts: bool = False,
        retry_backoff_ms: float = 5.0,
        retry_backoff_multiplier: float = 2.0,
        retry_backoff_cap_ms: float = 100.0,
        retry_jitter: float = 0.5,
        retry_budget_ratio: Optional[float] = None,
        retry_budget_burst: int = 10,
        degradable_reads: bool = False,
    ):
        self.env = env
        self.network = network
        self.workload = workload
        self.collector = collector
        self.balancer_name = balancer_name
        self.rngs = rngs if rngs is not None else RngRegistry(0)
        self.retry_aborts = retry_aborts
        #: base of the exponential backoff (first retry waits about this)
        self.retry_backoff_ms = retry_backoff_ms
        self.retry_backoff_multiplier = retry_backoff_multiplier
        self.retry_backoff_cap_ms = retry_backoff_cap_ms
        self.retry_jitter = retry_jitter
        #: pool-wide token-bucket retry budget: each success deposits
        #: ``ratio`` tokens, each retry spends one (None = unbounded retries,
        #: the legacy behavior)
        self.retry_budget: Optional[RetryBudget] = (
            RetryBudget(retry_budget_ratio, retry_budget_burst)
            if retry_budget_ratio is not None
            else None
        )
        #: tag read-only requests as degradable (the balancer's valve may
        #: serve them at its weaker policy while overloaded)
        self.degradable_reads = degradable_reads
        self.client_ids: list[str] = []
        self.completed = 0
        #: retries abandoned because the budget was exhausted
        self.retries_denied = 0

    def spawn(self, count: int, prefix: str = "client") -> list[str]:
        """Create ``count`` clients; returns their identifiers."""
        created = []
        for _ in range(count):
            client_id = f"{prefix}-{len(self.client_ids)}"
            self.client_ids.append(client_id)
            created.append(client_id)
            mailbox = self.network.register(client_id)
            self.env.process(
                self._client_loop(client_id, mailbox), name=f"{client_id}-loop"
            )
        return created

    def _client_loop(self, client_id: str, mailbox):
        mix_rng = self.rngs.stream(f"{client_id}:mix")
        think_rng = self.rngs.stream(f"{client_id}:think")
        # Backoff jitter draws from its own stream so enabling retries does
        # not perturb the mix/think sequences of any client.
        backoff_rng = self.rngs.stream(f"{client_id}:backoff")
        catalog = self.workload.catalog()
        while True:
            call = self.workload.next_call(client_id, mix_rng)
            template = catalog.get(call.template)
            is_update = template.is_update if template is not None else False
            attempts = 0
            while True:
                attempts += 1
                submit_time = self.env.now
                request = ClientRequest(
                    request_id=next_request_id(),
                    template=call.template,
                    params=call.params,
                    session_id=client_id,
                    reply_to=client_id,
                    submit_time=submit_time,
                    degradable=self.degradable_reads and not is_update,
                )
                self.network.send(client_id, self.balancer_name, request)
                response = yield mailbox.receive()
                self.completed += 1
                if TRACER.enabled and TRACER.is_sampled(request.request_id):
                    # The end-to-end client span: submit → acknowledgment.
                    TRACER.record(
                        "client.request", client_id, submit_time, self.env.now,
                        request_id=request.request_id,
                        commit_version=response.commit_version,
                        attrs={
                            "template": call.template,
                            "committed": response.committed,
                            "attempt": attempts,
                        },
                    )
                self.collector.record(
                    TxnSample(
                        template=call.template,
                        is_update=is_update,
                        committed=response.committed,
                        submit_time=submit_time,
                        ack_time=self.env.now,
                        stages=response.stages,
                    )
                )
                if response.committed:
                    if self.retry_budget is not None:
                        self.retry_budget.on_success()
                    break
                if not self.retry_aborts:
                    break
                if (
                    self.retry_budget is not None
                    and not self.retry_budget.try_spend()
                ):
                    # Budget exhausted: give the abort to the caller instead
                    # of feeding the retry storm.
                    self.retries_denied += 1
                    break
                delay = backoff_delay_ms(
                    self.retry_backoff_ms,
                    attempts,
                    rng=backoff_rng,
                    multiplier=self.retry_backoff_multiplier,
                    cap_ms=self.retry_backoff_cap_ms,
                    jitter=self.retry_jitter,
                )
                if response.retry_after_ms is not None:
                    delay = max(delay, response.retry_after_ms)
                yield self.env.timeout(delay)
            think = self.workload.think_time_ms(client_id, think_rng)
            if think > 0:
                yield self.env.timeout(think)


class OpenLoopLoad:
    """Open-loop (rate-driven) load generator.

    Closed-loop clients self-throttle: when the system slows down, so do
    they, which is exactly why they can never exhibit saturation collapse or
    metastable retry storms.  This generator issues requests at a Poisson
    ``rate_tps`` *regardless of completions* — offered load is an input, not
    a consequence — and each in-flight request retries independently under
    the configured backoff/budget rules.  :meth:`set_rate` changes the rate
    mid-run (the saturation bench's spike).

    One sample is recorded per *logical* request, with ``submit_time`` of
    the first attempt and the final outcome — response time therefore
    includes retry delays, and ``collector.timeline()`` over committed
    samples is the goodput curve.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        workload: Workload,
        collector: MetricsCollector,
        rate_tps: float,
        balancer_name: str = "lb",
        rngs: Optional[RngRegistry] = None,
        name: str = "openloop",
        sessions: int = 8,
        retry_aborts: bool = False,
        max_attempts: int = 8,
        retry_budget_ratio: Optional[float] = None,
        retry_budget_burst: int = 10,
        retry_backoff_ms: float = 5.0,
        retry_backoff_multiplier: float = 2.0,
        retry_backoff_cap_ms: float = 100.0,
        retry_jitter: float = 0.5,
        degradable_reads: bool = False,
    ):
        if rate_tps < 0:
            raise ValueError("rate_tps must be >= 0")
        if sessions < 1:
            raise ValueError("sessions must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.env = env
        self.network = network
        self.workload = workload
        self.collector = collector
        self.rate_tps = rate_tps
        self.balancer_name = balancer_name
        self.rngs = rngs if rngs is not None else RngRegistry(0)
        self.name = name
        self.sessions = sessions
        self.retry_aborts = retry_aborts
        self.max_attempts = max_attempts
        self.retry_backoff_ms = retry_backoff_ms
        self.retry_backoff_multiplier = retry_backoff_multiplier
        self.retry_backoff_cap_ms = retry_backoff_cap_ms
        self.retry_jitter = retry_jitter
        self.degradable_reads = degradable_reads
        self.retry_budget: Optional[RetryBudget] = (
            RetryBudget(retry_budget_ratio, retry_budget_burst)
            if retry_budget_ratio is not None
            else None
        )
        self._catalog = workload.catalog()
        # All requests share one endpoint; a dispatcher process fans the
        # responses out to per-request waiters by request id.
        self.mailbox = network.register(name)
        self._waiters: dict[int, Event] = {}
        self._backoff_rng = self.rngs.stream(f"{name}:backoff")
        #: logical requests issued / finished / committed
        self.offered = 0
        self.completed = 0
        self.committed = 0
        #: Overloaded fast-rejects observed (attempt-level)
        self.shed_responses = 0
        #: logical requests abandoned with the retry budget exhausted
        self.budget_denied = 0
        self.env.process(self._arrivals(), name=f"{name}-arrivals")
        self.env.process(self._dispatcher(), name=f"{name}-dispatcher")

    def set_rate(self, rate_tps: float) -> None:
        """Change the offered load (takes effect at the next arrival)."""
        if rate_tps < 0:
            raise ValueError("rate_tps must be >= 0")
        self.rate_tps = rate_tps

    def _arrivals(self):
        arrival_rng = self.rngs.stream(f"{self.name}:arrivals")
        mix_rng = self.rngs.stream(f"{self.name}:mix")
        seq = 0
        while True:
            if self.rate_tps <= 0:
                yield self.env.timeout(1.0)
                continue
            yield self.env.timeout(arrival_rng.exponential(1000.0 / self.rate_tps))
            session_id = f"{self.name}-s{seq % self.sessions}"
            call = self.workload.next_call(session_id, mix_rng)
            self.env.process(
                self._request(session_id, call), name=f"{self.name}-req-{seq}"
            )
            seq += 1

    def _dispatcher(self):
        while True:
            response = yield self.mailbox.receive()
            waiter = self._waiters.pop(response.request_id, None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(response)

    def _request(self, session_id: str, call):
        template = self._catalog.get(call.template)
        is_update = template.is_update if template is not None else False
        degradable = self.degradable_reads and not is_update
        self.offered += 1
        first_submit = self.env.now
        attempts = 0
        while True:
            attempts += 1
            request = ClientRequest(
                request_id=next_request_id(),
                template=call.template,
                params=call.params,
                session_id=session_id,
                reply_to=self.name,
                submit_time=self.env.now,
                degradable=degradable,
            )
            waiter = Event(self.env)
            self._waiters[request.request_id] = waiter
            self.network.send(self.name, self.balancer_name, request)
            response = yield waiter
            if response.committed:
                self.committed += 1
                if self.retry_budget is not None:
                    self.retry_budget.on_success()
                break
            if response.overloaded:
                self.shed_responses += 1
            if not self.retry_aborts or attempts >= self.max_attempts:
                break
            if self.retry_budget is not None and not self.retry_budget.try_spend():
                self.budget_denied += 1
                break
            delay = backoff_delay_ms(
                self.retry_backoff_ms,
                attempts,
                rng=self._backoff_rng,
                multiplier=self.retry_backoff_multiplier,
                cap_ms=self.retry_backoff_cap_ms,
                jitter=self.retry_jitter,
            )
            if response.retry_after_ms is not None:
                delay = max(delay, response.retry_after_ms)
            yield self.env.timeout(delay)
        self.completed += 1
        if TRACER.enabled and TRACER.is_sampled(request.request_id):
            TRACER.record(
                "client.request", session_id, first_submit, self.env.now,
                request_id=request.request_id,
                commit_version=response.commit_version,
                attrs={
                    "template": call.template,
                    "committed": response.committed,
                    "attempt": attempts,
                },
            )
        self.collector.record(
            TxnSample(
                template=call.template,
                is_update=is_update,
                committed=response.committed,
                submit_time=first_submit,
                ack_time=self.env.now,
                stages=response.stages,
            )
        )
