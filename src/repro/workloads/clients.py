"""Closed-loop clients — the remote terminal emulator (RTE).

The paper drives the system with a multi-threaded RTE in which each thread
represents one client issuing requests in a closed loop: submit a
transaction, wait for the outcome, think, repeat.  Each client is one
simulation process here.  A client's identifier doubles as its session
identifier — the SESSION configuration tracks versions per client, exactly
as in the paper.
"""

from __future__ import annotations

from typing import Optional

from ..metrics.collector import MetricsCollector, TxnSample
from ..middleware.messages import ClientRequest, next_request_id
from ..sim.kernel import Environment
from ..sim.network import Network
from ..sim.rng import RngRegistry
from .base import Workload

__all__ = ["ClientPool", "backoff_delay_ms"]


def backoff_delay_ms(
    base_ms: float,
    attempt: int,
    rng=None,
    multiplier: float = 2.0,
    cap_ms: float = 100.0,
    jitter: float = 0.5,
) -> float:
    """Exponential retry backoff with jitter and a cap.

    ``base_ms * multiplier**(attempt-1)``, capped at ``cap_ms``, then
    reduced by up to ``jitter`` (fraction) of itself — full-jitter style, so
    a burst of clients aborted by the same conflict doesn't retry in
    lockstep and recreate the conflict.  ``attempt`` counts from 1 (the
    first retry).
    """
    if attempt < 1:
        raise ValueError("attempt counts from 1")
    if not 0.0 <= jitter <= 1.0:
        raise ValueError("jitter must be within [0, 1]")
    delay = min(base_ms * multiplier ** (attempt - 1), cap_ms)
    if rng is not None and jitter > 0:
        delay *= 1.0 - jitter * rng.random()
    return delay


class ClientPool:
    """Spawns and owns the closed-loop client processes of one run."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        workload: Workload,
        collector: MetricsCollector,
        balancer_name: str = "lb",
        rngs: Optional[RngRegistry] = None,
        retry_aborts: bool = False,
        retry_backoff_ms: float = 5.0,
        retry_backoff_multiplier: float = 2.0,
        retry_backoff_cap_ms: float = 100.0,
        retry_jitter: float = 0.5,
    ):
        self.env = env
        self.network = network
        self.workload = workload
        self.collector = collector
        self.balancer_name = balancer_name
        self.rngs = rngs if rngs is not None else RngRegistry(0)
        self.retry_aborts = retry_aborts
        #: base of the exponential backoff (first retry waits about this)
        self.retry_backoff_ms = retry_backoff_ms
        self.retry_backoff_multiplier = retry_backoff_multiplier
        self.retry_backoff_cap_ms = retry_backoff_cap_ms
        self.retry_jitter = retry_jitter
        self.client_ids: list[str] = []
        self.completed = 0

    def spawn(self, count: int, prefix: str = "client") -> list[str]:
        """Create ``count`` clients; returns their identifiers."""
        created = []
        for _ in range(count):
            client_id = f"{prefix}-{len(self.client_ids)}"
            self.client_ids.append(client_id)
            created.append(client_id)
            mailbox = self.network.register(client_id)
            self.env.process(
                self._client_loop(client_id, mailbox), name=f"{client_id}-loop"
            )
        return created

    def _client_loop(self, client_id: str, mailbox):
        mix_rng = self.rngs.stream(f"{client_id}:mix")
        think_rng = self.rngs.stream(f"{client_id}:think")
        # Backoff jitter draws from its own stream so enabling retries does
        # not perturb the mix/think sequences of any client.
        backoff_rng = self.rngs.stream(f"{client_id}:backoff")
        catalog = self.workload.catalog()
        while True:
            call = self.workload.next_call(client_id, mix_rng)
            template = catalog.get(call.template)
            is_update = template.is_update if template is not None else False
            attempts = 0
            while True:
                attempts += 1
                submit_time = self.env.now
                request = ClientRequest(
                    request_id=next_request_id(),
                    template=call.template,
                    params=call.params,
                    session_id=client_id,
                    reply_to=client_id,
                    submit_time=submit_time,
                )
                self.network.send(client_id, self.balancer_name, request)
                response = yield mailbox.receive()
                self.completed += 1
                self.collector.record(
                    TxnSample(
                        template=call.template,
                        is_update=is_update,
                        committed=response.committed,
                        submit_time=submit_time,
                        ack_time=self.env.now,
                        stages=response.stages,
                    )
                )
                if response.committed or not self.retry_aborts:
                    break
                yield self.env.timeout(
                    backoff_delay_ms(
                        self.retry_backoff_ms,
                        attempts,
                        rng=backoff_rng,
                        multiplier=self.retry_backoff_multiplier,
                        cap_ms=self.retry_backoff_cap_ms,
                        jitter=self.retry_jitter,
                    )
                )
            think = self.workload.think_time_ms(client_id, think_rng)
            if think > 0:
                yield self.env.timeout(think)
