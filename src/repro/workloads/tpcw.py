"""TPC-W benchmark workload (Section V-C of the paper).

TPC-W models an online bookstore.  The paper drives its prototype with the
three standard mixes, which differ in the fraction of update transactions:

* **browsing** — 5 % updates,
* **shopping** — 20 % updates (the most representative mix),
* **ordering** — 50 % updates (the most challenging for replication).

We reproduce the *database-level* workload: the schema (country, author,
item, customer, address, orders, order_line, cc_xacts, shopping_cart,
shopping_cart_line), one transaction template per web interaction's database
transaction, and per-mix interaction weights whose update fractions are
exactly 5/20/50 %.  The web tier (IIS/ASP.NET in the paper) contributes
fixed per-interaction latency, which we fold into client think time; see
DESIGN.md's substitution table.

Each emulated browser is one closed-loop client bound to one customer
account; think times are negative-exponential as in the paper.
"""

from __future__ import annotations

from typing import Sequence

from ..middleware.perfmodel import PerformanceParams
from ..sim.rng import Rng
from ..storage.database import Database
from ..storage.schema import Column, TableSchema
from .base import TemplateCatalog, TransactionTemplate, TxnCall, Workload

__all__ = ["TPCWBenchmark", "MIXES", "MIX_UPDATE_FRACTION"]

SUBJECTS = [
    "ARTS", "BIOGRAPHIES", "BUSINESS", "CHILDREN", "COMPUTERS", "COOKING",
    "HEALTH", "HISTORY", "HOME", "HUMOR", "LITERATURE", "MYSTERY",
    "NON-FICTION", "PARENTING", "POLITICS", "REFERENCE", "RELIGION",
    "ROMANCE", "SELF-HELP", "SCIENCE-NATURE", "SCIENCE-FICTION", "SPORTS",
    "YOUTH", "TRAVEL",
]

#: interaction weights per mix; update templates sum to exactly 5/20/50 %.
MIXES: dict[str, dict[str, float]] = {
    "browsing": {
        "tpcw-home": 0.25, "tpcw-new-products": 0.12, "tpcw-best-sellers": 0.12,
        "tpcw-product-detail": 0.20, "tpcw-search-subject": 0.10,
        "tpcw-search-author": 0.06, "tpcw-order-inquiry": 0.05,
        "tpcw-buy-request": 0.05,
        "tpcw-shopping-cart": 0.030, "tpcw-customer-registration": 0.010,
        "tpcw-buy-confirm": 0.007, "tpcw-admin-confirm": 0.003,
    },
    "shopping": {
        "tpcw-home": 0.18, "tpcw-new-products": 0.10, "tpcw-best-sellers": 0.10,
        "tpcw-product-detail": 0.18, "tpcw-search-subject": 0.08,
        "tpcw-search-author": 0.06, "tpcw-order-inquiry": 0.05,
        "tpcw-buy-request": 0.05,
        "tpcw-shopping-cart": 0.13, "tpcw-customer-registration": 0.02,
        "tpcw-buy-confirm": 0.04, "tpcw-admin-confirm": 0.01,
    },
    "ordering": {
        "tpcw-home": 0.10, "tpcw-new-products": 0.05, "tpcw-best-sellers": 0.05,
        "tpcw-product-detail": 0.10, "tpcw-search-subject": 0.05,
        "tpcw-search-author": 0.03, "tpcw-order-inquiry": 0.07,
        "tpcw-buy-request": 0.05,
        "tpcw-shopping-cart": 0.30, "tpcw-customer-registration": 0.05,
        "tpcw-buy-confirm": 0.13, "tpcw-admin-confirm": 0.02,
    },
}

#: the update fraction each mix is defined by (paper, Section V-C)
MIX_UPDATE_FRACTION = {"browsing": 0.05, "shopping": 0.20, "ordering": 0.50}

_UPDATE_TEMPLATES = {
    "tpcw-shopping-cart",
    "tpcw-customer-registration",
    "tpcw-buy-confirm",
    "tpcw-admin-confirm",
}


# ---------------------------------------------------------------------------
# Transaction template bodies
# ---------------------------------------------------------------------------

def _home(ctx, params):
    """Home interaction: customer greeting plus promotional items."""
    customer = ctx.read("customer", params["customer_id"])
    promos = [ctx.read("item", item_id) for item_id in params["promo_items"]]
    return {"customer": customer, "promotions": [p for p in promos if p]}


def _new_products(ctx, params):
    """New-products listing for one subject (index scan + detail reads)."""
    keys = ctx.lookup("item", "subject", params["subject"], cost_ms=6.0)
    items = [ctx.read("item", key) for key in keys[:10]]
    authors = {
        item["author_id"]: ctx.read("author", item["author_id"])
        for item in items
        if item
    }
    return {"items": items, "authors": authors}


def _best_sellers(ctx, params):
    """Best sellers: aggregate recent orders (the heaviest read query)."""
    orders = ctx.scan("orders", limit=20, cost_ms=10.0)
    counts: dict[int, int] = {}
    for order in orders[-10:]:
        for line_key in ctx.lookup("order_line", "order_id", order["id"], cost_ms=1.5):
            line = ctx.read("order_line", line_key)
            if line is not None:
                counts[line["item_id"]] = counts.get(line["item_id"], 0) + line["qty"]
    top = sorted(counts, key=lambda k: -counts[k])[:5]
    return {"top_items": [ctx.read("item", item_id) for item_id in top]}


def _product_detail(ctx, params):
    """Product detail page: item plus author."""
    item = ctx.read_required("item", params["item_id"])
    author = ctx.read("author", item["author_id"])
    return {"item": item, "author": author}


def _search_subject(ctx, params):
    """Search results by subject."""
    keys = ctx.lookup("item", "subject", params["subject"], cost_ms=5.0)
    return {"items": [ctx.read("item", key) for key in keys[:5]]}


def _search_author(ctx, params):
    """Search results by author."""
    keys = ctx.lookup("item", "author_id", params["author_id"], cost_ms=5.0)
    return {"items": [ctx.read("item", key) for key in keys[:5]]}


def _order_inquiry(ctx, params):
    """Display the customer's most recent order."""
    customer = ctx.read_required("customer", params["customer_id"])
    order_keys = ctx.lookup("orders", "customer_id", params["customer_id"], cost_ms=3.0)
    if not order_keys:
        return {"customer": customer, "order": None, "lines": []}
    latest = max(order_keys)
    order = ctx.read("orders", latest)
    lines = [
        ctx.read("order_line", key)
        for key in ctx.lookup("order_line", "order_id", latest, cost_ms=1.5)
    ]
    return {"customer": customer, "order": order, "lines": lines}


def _buy_request(ctx, params):
    """Checkout page: customer, address and current cart contents."""
    customer = ctx.read_required("customer", params["customer_id"])
    address = ctx.read("address", customer["addr_id"])
    cart = ctx.read("shopping_cart", params["customer_id"])
    line_keys = ctx.lookup(
        "shopping_cart_line", "cart_id", params["customer_id"], cost_ms=1.5
    )
    lines = [ctx.read("shopping_cart_line", key) for key in line_keys]
    return {"customer": customer, "address": address, "cart": cart, "lines": lines}


def _cart_line_key(cart_id: int, item_id: int) -> int:
    """Primary key of a cart line: unique per (cart, item)."""
    return cart_id * 1_000_000 + item_id


def _shopping_cart(ctx, params):
    """Add an item to the cart (or bump its quantity)."""
    cart_id = params["customer_id"]
    item = ctx.read_required("item", params["item_id"])
    cart = ctx.read_required("shopping_cart", cart_id)
    line_key = _cart_line_key(cart_id, params["item_id"])
    line = ctx.read("shopping_cart_line", line_key)
    qty = params.get("qty", 1)
    if line is None:
        ctx.insert(
            "shopping_cart_line",
            {
                "id": line_key,
                "cart_id": cart_id,
                "item_id": params["item_id"],
                "qty": qty,
            },
        )
    else:
        ctx.update("shopping_cart_line", line_key, {"qty": line["qty"] + qty})
    ctx.update(
        "shopping_cart", cart_id, {"total": cart["total"] + qty * item["price"]}
    )
    return {"cart_id": cart_id, "added": params["item_id"], "qty": qty}


def _customer_registration(ctx, params):
    """Refresh the customer's profile and address."""
    customer = ctx.read_required("customer", params["customer_id"])
    ctx.update(
        "customer",
        params["customer_id"],
        {"discount": params["discount"]},
    )
    ctx.update("address", customer["addr_id"], {"city": params["city"]})
    return {"customer_id": params["customer_id"]}


def _buy_confirm(ctx, params):
    """Turn the cart into an order: the heaviest update transaction."""
    customer_id = params["customer_id"]
    order_id = params["order_id"]
    customer = ctx.read_required("customer", customer_id)
    ctx.read_required("shopping_cart", customer_id)
    line_keys = ctx.lookup("shopping_cart_line", "cart_id", customer_id, cost_ms=1.5)
    total = 0.0
    line_number = 0
    for key in line_keys:
        line = ctx.read("shopping_cart_line", key)
        if line is None:
            continue
        item = ctx.read("item", line["item_id"])
        if item is None:
            continue
        line_number += 1
        total += line["qty"] * item["price"]
        ctx.insert(
            "order_line",
            {
                "id": order_id * 100 + line_number,
                "order_id": order_id,
                "item_id": line["item_id"],
                "qty": line["qty"],
            },
        )
        ctx.update("item", line["item_id"], {"stock": max(0, item["stock"] - line["qty"])})
        ctx.delete("shopping_cart_line", key)
    ctx.insert(
        "orders",
        {
            "id": order_id,
            "customer_id": customer_id,
            "total": total,
            "status": "PENDING",
        },
    )
    ctx.insert("cc_xacts", {"order_id": order_id, "amount": total})
    ctx.update("shopping_cart", customer_id, {"total": 0.0})
    ctx.update("customer", customer_id, {"balance": customer["balance"] + total})
    return {"order_id": order_id, "lines": line_number, "total": total}


def _admin_confirm(ctx, params):
    """Administrative item update (price/thumbnail change)."""
    item = ctx.read_required("item", params["item_id"])
    ctx.update("item", params["item_id"], {"price": round(item["price"] * 1.01, 2)})
    return {"item_id": params["item_id"]}


class TPCWBenchmark(Workload):
    """The TPC-W bookstore workload at one of the three standard mixes."""

    name = "tpcw"

    def __init__(
        self,
        mix: str = "shopping",
        num_items: int = 1_000,
        num_customers: int = 500,
        num_authors: int = 250,
        num_countries: int = 92,
        think_time_mean_ms: float = 50.0,
    ):
        if mix not in MIXES:
            raise ValueError(f"unknown mix {mix!r}; expected one of {sorted(MIXES)}")
        self.mix = mix
        self.num_items = num_items
        self.num_customers = num_customers
        self.num_authors = num_authors
        self.num_countries = num_countries
        self.think_time_mean_ms = think_time_mean_ms
        self._weights = MIXES[mix]
        self._template_names = list(self._weights)
        self._template_weights = [self._weights[n] for n in self._template_names]
        self._order_seq: dict[str, int] = {}
        self._catalog = self._build_catalog()

    @property
    def update_fraction(self) -> float:
        """The mix's nominal update fraction (5/20/50 %)."""
        return MIX_UPDATE_FRACTION[self.mix]

    # -- catalog --------------------------------------------------------------
    def _build_catalog(self) -> TemplateCatalog:
        specs = [
            ("tpcw-home", {"customer", "item"}, _home, False),
            ("tpcw-new-products", {"item", "author"}, _new_products, False),
            ("tpcw-best-sellers", {"orders", "order_line", "item"}, _best_sellers, False),
            ("tpcw-product-detail", {"item", "author"}, _product_detail, False),
            ("tpcw-search-subject", {"item"}, _search_subject, False),
            ("tpcw-search-author", {"item"}, _search_author, False),
            ("tpcw-order-inquiry", {"customer", "orders", "order_line"}, _order_inquiry, False),
            ("tpcw-buy-request",
             {"customer", "address", "shopping_cart", "shopping_cart_line"},
             _buy_request, False),
            ("tpcw-shopping-cart",
             {"shopping_cart", "shopping_cart_line", "item"}, _shopping_cart, True),
            ("tpcw-customer-registration", {"customer", "address"},
             _customer_registration, True),
            ("tpcw-buy-confirm",
             {"customer", "shopping_cart", "shopping_cart_line", "orders",
              "order_line", "cc_xacts", "item"},
             _buy_confirm, True),
            ("tpcw-admin-confirm", {"item"}, _admin_confirm, True),
        ]
        catalog = TemplateCatalog()
        for name, table_set, body, is_update in specs:
            catalog.register(
                TransactionTemplate(
                    name=name,
                    table_set=frozenset(table_set),
                    body=body,
                    is_update=is_update,
                )
            )
        return catalog

    # -- Workload interface ----------------------------------------------------
    def schemas(self) -> Sequence[TableSchema]:
        return [
            TableSchema("country", [Column("id", int), Column("name", str)], "id"),
            TableSchema(
                "author",
                [Column("id", int), Column("fname", str), Column("lname", str)],
                "id",
            ),
            TableSchema(
                "item",
                [
                    Column("id", int),
                    Column("title", str),
                    Column("author_id", int),
                    Column("subject", str),
                    Column("price", float),
                    Column("stock", int),
                ],
                "id",
                indexes=["subject", "author_id"],
            ),
            TableSchema(
                "address",
                [
                    Column("id", int),
                    Column("street", str),
                    Column("city", str),
                    Column("country_id", int),
                ],
                "id",
            ),
            TableSchema(
                "customer",
                [
                    Column("id", int),
                    Column("uname", str),
                    Column("addr_id", int),
                    Column("discount", float),
                    Column("balance", float),
                ],
                "id",
            ),
            TableSchema(
                "orders",
                [
                    Column("id", int),
                    Column("customer_id", int),
                    Column("total", float),
                    Column("status", str),
                ],
                "id",
                indexes=["customer_id"],
            ),
            TableSchema(
                "order_line",
                [
                    Column("id", int),
                    Column("order_id", int),
                    Column("item_id", int),
                    Column("qty", int),
                ],
                "id",
                indexes=["order_id"],
            ),
            TableSchema(
                "cc_xacts",
                [Column("order_id", int), Column("amount", float)],
                "order_id",
            ),
            TableSchema(
                "shopping_cart",
                [Column("id", int), Column("total", float)],
                "id",
            ),
            TableSchema(
                "shopping_cart_line",
                [
                    Column("id", int),
                    Column("cart_id", int),
                    Column("item_id", int),
                    Column("qty", int),
                ],
                "id",
                indexes=["cart_id"],
            ),
        ]

    def catalog(self) -> TemplateCatalog:
        return self._catalog

    def populate(self, database: Database, rng: Rng) -> None:
        for cid in range(1, self.num_countries + 1):
            database.load_row("country", {"id": cid, "name": f"country-{cid}"})
        for aid in range(1, self.num_authors + 1):
            database.load_row(
                "author", {"id": aid, "fname": f"first-{aid}", "lname": f"last-{aid}"}
            )
        for iid in range(1, self.num_items + 1):
            database.load_row(
                "item",
                {
                    "id": iid,
                    "title": f"Book {iid}",
                    "author_id": rng.randint(1, self.num_authors),
                    "subject": rng.choice(SUBJECTS),
                    "price": round(rng.uniform(5.0, 100.0), 2),
                    "stock": rng.randint(10, 1000),
                },
            )
        for cust in range(1, self.num_customers + 1):
            database.load_row(
                "address",
                {
                    "id": cust,
                    "street": f"{cust} Main St",
                    "city": f"city-{cust % 97}",
                    "country_id": rng.randint(1, self.num_countries),
                },
            )
            database.load_row(
                "customer",
                {
                    "id": cust,
                    "uname": f"user{cust}",
                    "addr_id": cust,
                    "discount": round(rng.uniform(0.0, 0.5), 2),
                    "balance": 0.0,
                },
            )
            database.load_row("shopping_cart", {"id": cust, "total": 0.0})
        # One historical order per customer so best-sellers and order
        # inquiries have data from the start.
        for cust in range(1, self.num_customers + 1):
            order_id = cust * 1_000_000
            database.load_row(
                "orders",
                {"id": order_id, "customer_id": cust, "total": 0.0, "status": "SHIPPED"},
            )
            for line_number in range(1, rng.randint(1, 3) + 1):
                database.load_row(
                    "order_line",
                    {
                        "id": order_id * 100 + line_number,
                        "order_id": order_id,
                        "item_id": rng.randint(1, self.num_items),
                        "qty": rng.randint(1, 5),
                    },
                )

    def customer_for(self, client_id: str) -> int:
        """Deterministic client → customer binding (one EB, one account)."""
        digits = "".join(ch for ch in client_id if ch.isdigit())
        index = int(digits) if digits else abs(hash(client_id))
        return index % self.num_customers + 1

    def next_call(self, client_id: str, rng: Rng) -> TxnCall:
        template = rng.weighted_choice(self._template_names, self._template_weights)
        customer_id = self.customer_for(client_id)
        params: dict = {"customer_id": customer_id}
        if template == "tpcw-home":
            params["promo_items"] = [rng.randint(1, self.num_items) for _ in range(2)]
        elif template in ("tpcw-new-products", "tpcw-search-subject", "tpcw-best-sellers"):
            params["subject"] = rng.choice(SUBJECTS)
        elif template == "tpcw-product-detail":
            params["item_id"] = rng.randint(1, self.num_items)
        elif template == "tpcw-search-author":
            params["author_id"] = rng.randint(1, self.num_authors)
        elif template == "tpcw-shopping-cart":
            params["item_id"] = rng.randint(1, self.num_items)
            params["qty"] = rng.randint(1, 3)
        elif template == "tpcw-customer-registration":
            params["discount"] = round(rng.uniform(0.0, 0.5), 2)
            params["city"] = f"city-{rng.randint(0, 96)}"
        elif template == "tpcw-buy-confirm":
            seq = self._order_seq.get(client_id, 0) + 1
            self._order_seq[client_id] = seq
            params["order_id"] = customer_id * 1_000_000 + seq
        elif template == "tpcw-admin-confirm":
            params["item_id"] = rng.randint(1, self.num_items)
        return TxnCall(template, params)

    def think_time_ms(self, client_id: str, rng: Rng) -> float:
        if self.think_time_mean_ms <= 0:
            return 0.0
        return rng.exponential(self.think_time_mean_ms)

    def performance_params(self) -> PerformanceParams:
        # TPC-W statements are heavier than the micro-benchmark's point
        # queries; refresh transactions carry multi-op writesets whose
        # application (and, under EAGER, synchronous acknowledgment) is what
        # limits scalability on the update-heavy mixes.
        return PerformanceParams(
            read_stmt_ms=1.6,
            write_stmt_ms=2.8,
            commit_base_ms=0.6,
            commit_per_op_ms=0.2,
            refresh_base_ms=1.0,
            refresh_per_op_ms=2.0,
            eager_flush_base_ms=1.0,
            eager_flush_per_op_ms=3.4,
            replica_speed_spread=0.35,
        )
