"""TPC-C-lite: the order-entry benchmark, scaled for the simulated cluster.

The paper notes (Section IV) that "the workloads of the TPC-C and TPC-W
transaction benchmarks run serializably under SI and GSI".  This module
provides a compact but faithful TPC-C: the full five-transaction mix
(new-order 45 %, payment 43 %, order-status 4 %, delivery 4 %, stock-level
4 %) over the warehouse/district/customer/item/stock/order schema.

TPC-C stresses the replicated system differently from TPC-W:

* the **district row is hot** — every new-order increments
  ``district.next_o_id``, so concurrent new-orders in one district are
  write-write conflicts that certification must abort (first-committer
  wins); clients retry, as the TPC-C spec prescribes;
* writesets are **large** (a new-order writes ~2 + 2·items rows), loading
  the refresh pipeline.

Primary keys are integers with positional encoding (district 42 of
warehouse 3 is ``3 * 100 + 42``), matching how the engine's single-column
primary keys work.
"""

from __future__ import annotations

from typing import Sequence

from ..middleware.perfmodel import PerformanceParams
from ..sim.rng import Rng
from ..storage.database import Database
from ..storage.schema import Column, TableSchema
from .base import TemplateCatalog, TransactionTemplate, TxnCall, Workload

__all__ = ["TPCCBenchmark", "district_key", "customer_key", "stock_key", "order_key"]

#: the standard TPC-C transaction mix
MIX = (
    ("tpcc-new-order", 0.45),
    ("tpcc-payment", 0.43),
    ("tpcc-order-status", 0.04),
    ("tpcc-delivery", 0.04),
    ("tpcc-stock-level", 0.04),
)


def district_key(warehouse: int, district: int) -> int:
    """Primary key of a district."""
    return warehouse * 100 + district


def customer_key(warehouse: int, district: int, customer: int) -> int:
    """Primary key of a customer."""
    return district_key(warehouse, district) * 10_000 + customer


def stock_key(warehouse: int, item: int) -> int:
    """Primary key of a stock row."""
    return warehouse * 1_000_000 + item


def order_key(warehouse: int, district: int, order: int) -> int:
    """Primary key of an order."""
    return district_key(warehouse, district) * 1_000_000 + order


# ---------------------------------------------------------------------------
# Transaction bodies
# ---------------------------------------------------------------------------

def _new_order(ctx, params):
    """Place an order: the hot district increment plus per-item stock
    updates and order lines."""
    warehouse = params["warehouse"]
    district = params["district"]
    d_key = district_key(warehouse, district)

    ctx.read_required("warehouse", warehouse)
    row = ctx.read_required("district", d_key)
    order_number = row["next_o_id"]
    ctx.update("district", d_key, {"next_o_id": order_number + 1})
    ctx.read_required("customer", customer_key(warehouse, district, params["customer"]))

    o_key = order_key(warehouse, district, order_number)
    ctx.insert("orders", {
        "id": o_key,
        "district_id": d_key,
        "customer_id": customer_key(warehouse, district, params["customer"]),
        "ol_cnt": len(params["items"]),
        "carrier_id": 0,
    })
    ctx.insert("new_order", {"id": o_key, "district_id": d_key})

    total = 0.0
    for line_number, (item_id, quantity) in enumerate(params["items"], start=1):
        item = ctx.read_required("item", item_id)
        s_key = stock_key(warehouse, item_id)
        stock = ctx.read_required("stock", s_key)
        new_quantity = stock["quantity"] - quantity
        if new_quantity < 10:
            new_quantity += 91  # TPC-C's restock rule
        ctx.update("stock", s_key, {"quantity": new_quantity,
                                    "ytd": stock["ytd"] + quantity})
        amount = item["price"] * quantity
        total += amount
        ctx.insert("order_line", {
            "id": o_key * 100 + line_number,
            "order_id": o_key,
            "item_id": item_id,
            "quantity": quantity,
            "amount": amount,
        })
    return {"order": o_key, "total": round(total, 2)}


def _payment(ctx, params):
    """Record a customer payment against warehouse/district/customer."""
    warehouse = params["warehouse"]
    district = params["district"]
    amount = params["amount"]
    d_key = district_key(warehouse, district)
    c_key = customer_key(warehouse, district, params["customer"])

    w_row = ctx.read_required("warehouse", warehouse)
    ctx.update("warehouse", warehouse, {"ytd": round(w_row["ytd"] + amount, 2)})
    d_row = ctx.read_required("district", d_key)
    ctx.update("district", d_key, {"ytd": round(d_row["ytd"] + amount, 2)})
    c_row = ctx.read_required("customer", c_key)
    ctx.update("customer", c_key, {
        "balance": round(c_row["balance"] - amount, 2),
        "ytd_payment": round(c_row["ytd_payment"] + amount, 2),
    })
    ctx.insert("history", {
        "id": params["history_id"],
        "customer_id": c_key,
        "amount": amount,
    })
    return {"customer": c_key, "amount": amount}


def _order_status(ctx, params):
    """Read a customer's most recent order and its lines."""
    c_key = customer_key(params["warehouse"], params["district"], params["customer"])
    customer = ctx.read_required("customer", c_key)
    order_keys = ctx.lookup("orders", "customer_id", c_key, cost_ms=2.0)
    if not order_keys:
        return {"customer": customer, "order": None, "lines": []}
    latest = max(order_keys)
    order = ctx.read("orders", latest)
    lines = [
        ctx.read("order_line", key)
        for key in ctx.lookup("order_line", "order_id", latest, cost_ms=1.5)
    ]
    return {"customer": customer, "order": order, "lines": lines}


def _delivery(ctx, params):
    """Deliver the oldest undelivered order of one district."""
    d_key = district_key(params["warehouse"], params["district"])
    pending = ctx.lookup("new_order", "district_id", d_key, cost_ms=2.0)
    if not pending:
        # Nothing to deliver: TPC-C treats this as a legal empty delivery.
        # Touch the district so the transaction is still an update (it
        # would update carrier info in the full spec).
        row = ctx.read_required("district", d_key)
        ctx.update("district", d_key, {"ytd": row["ytd"]})
        return {"delivered": None}
    oldest = min(pending)
    ctx.delete("new_order", oldest)
    order = ctx.read_required("orders", oldest)
    ctx.update("orders", oldest, {"carrier_id": params["carrier"]})
    customer = ctx.read_required("customer", order["customer_id"])
    amount = sum(
        ctx.read("order_line", key)["amount"]
        for key in ctx.lookup("order_line", "order_id", oldest, cost_ms=1.5)
    )
    ctx.update("customer", order["customer_id"],
               {"balance": round(customer["balance"] + amount, 2)})
    return {"delivered": oldest}


def _stock_level(ctx, params):
    """Count recent items whose stock fell below a threshold."""
    warehouse = params["warehouse"]
    d_key = district_key(warehouse, params["district"])
    district = ctx.read_required("district", d_key)
    next_order = district["next_o_id"]
    low = 0
    seen: set[int] = set()
    for order_number in range(max(1, next_order - 5), next_order):
        o_key = order_key(warehouse, params["district"], order_number)
        for line_key in ctx.lookup("order_line", "order_id", o_key, cost_ms=1.5):
            line = ctx.read("order_line", line_key)
            if line is None or line["item_id"] in seen:
                continue
            seen.add(line["item_id"])
            stock = ctx.read("stock", stock_key(warehouse, line["item_id"]))
            if stock is not None and stock["quantity"] < params["threshold"]:
                low += 1
    return {"low_stock": low}


class TPCCBenchmark(Workload):
    """TPC-C-lite over W warehouses x D districts."""

    name = "tpcc"

    def __init__(
        self,
        num_warehouses: int = 2,
        districts_per_warehouse: int = 10,
        customers_per_district: int = 30,
        num_items: int = 200,
        think_time_mean_ms: float = 50.0,
        max_order_lines: int = 8,
    ):
        if not 1 <= districts_per_warehouse <= 99:
            raise ValueError("districts_per_warehouse must be in [1, 99]")
        if not 1 <= customers_per_district <= 9_999:
            raise ValueError("customers_per_district must be in [1, 9999]")
        self.num_warehouses = num_warehouses
        self.districts_per_warehouse = districts_per_warehouse
        self.customers_per_district = customers_per_district
        self.num_items = num_items
        self.think_time_mean_ms = think_time_mean_ms
        self.max_order_lines = max_order_lines
        self._history_seq: dict[str, int] = {}
        self._catalog = self._build_catalog()

    def _build_catalog(self) -> TemplateCatalog:
        specs = [
            ("tpcc-new-order",
             {"warehouse", "district", "customer", "orders", "new_order",
              "item", "stock", "order_line"},
             _new_order, True),
            ("tpcc-payment",
             {"warehouse", "district", "customer", "history"}, _payment, True),
            ("tpcc-order-status",
             {"customer", "orders", "order_line"}, _order_status, False),
            ("tpcc-delivery",
             {"district", "new_order", "orders", "order_line", "customer"},
             _delivery, True),
            ("tpcc-stock-level",
             {"district", "order_line", "stock"}, _stock_level, False),
        ]
        catalog = TemplateCatalog()
        for name, tables, body, is_update in specs:
            catalog.register(TransactionTemplate(
                name=name, table_set=frozenset(tables), body=body,
                is_update=is_update,
            ))
        return catalog

    # -- Workload interface ----------------------------------------------------
    def schemas(self) -> Sequence[TableSchema]:
        return [
            TableSchema("warehouse",
                        [Column("id", int), Column("name", str), Column("ytd", float)],
                        "id"),
            TableSchema("district",
                        [Column("id", int), Column("warehouse_id", int),
                         Column("next_o_id", int), Column("ytd", float)],
                        "id"),
            TableSchema("customer",
                        [Column("id", int), Column("district_id", int),
                         Column("balance", float), Column("ytd_payment", float)],
                        "id"),
            TableSchema("item",
                        [Column("id", int), Column("name", str),
                         Column("price", float)],
                        "id"),
            TableSchema("stock",
                        [Column("id", int), Column("warehouse_id", int),
                         Column("item_id", int), Column("quantity", int),
                         Column("ytd", int)],
                        "id"),
            TableSchema("orders",
                        [Column("id", int), Column("district_id", int),
                         Column("customer_id", int), Column("ol_cnt", int),
                         Column("carrier_id", int)],
                        "id",
                        indexes=["customer_id"]),
            TableSchema("order_line",
                        [Column("id", int), Column("order_id", int),
                         Column("item_id", int), Column("quantity", int),
                         Column("amount", float)],
                        "id",
                        indexes=["order_id"]),
            TableSchema("new_order",
                        [Column("id", int), Column("district_id", int)],
                        "id",
                        indexes=["district_id"]),
            TableSchema("history",
                        [Column("id", int), Column("customer_id", int),
                         Column("amount", float)],
                        "id"),
        ]

    def catalog(self) -> TemplateCatalog:
        return self._catalog

    def populate(self, database: Database, rng: Rng) -> None:
        for warehouse in range(1, self.num_warehouses + 1):
            database.load_row("warehouse", {
                "id": warehouse, "name": f"W{warehouse}", "ytd": 0.0,
            })
            for district in range(1, self.districts_per_warehouse + 1):
                database.load_row("district", {
                    "id": district_key(warehouse, district),
                    "warehouse_id": warehouse,
                    "next_o_id": 1,
                    "ytd": 0.0,
                })
                for customer in range(1, self.customers_per_district + 1):
                    database.load_row("customer", {
                        "id": customer_key(warehouse, district, customer),
                        "district_id": district_key(warehouse, district),
                        "balance": 0.0,
                        "ytd_payment": 0.0,
                    })
        for item in range(1, self.num_items + 1):
            database.load_row("item", {
                "id": item, "name": f"item-{item}",
                "price": round(rng.uniform(1.0, 100.0), 2),
            })
            for warehouse in range(1, self.num_warehouses + 1):
                database.load_row("stock", {
                    "id": stock_key(warehouse, item),
                    "warehouse_id": warehouse,
                    "item_id": item,
                    "quantity": rng.randint(20, 100),
                    "ytd": 0,
                })

    @property
    def update_fraction(self) -> float:
        """Nominal update fraction of the standard mix (92 %)."""
        return sum(w for name, w in MIX
                   if self._catalog[name].is_update)

    def next_call(self, client_id: str, rng: Rng) -> TxnCall:
        names = [name for name, _w in MIX]
        weights = [w for _name, w in MIX]
        template = rng.weighted_choice(names, weights)
        warehouse = rng.randint(1, self.num_warehouses)
        district = rng.randint(1, self.districts_per_warehouse)
        params: dict = {"warehouse": warehouse, "district": district}
        if template == "tpcc-new-order":
            params["customer"] = rng.randint(1, self.customers_per_district)
            count = rng.randint(3, self.max_order_lines)
            params["items"] = [
                (item, rng.randint(1, 5))
                for item in rng.sample(list(range(1, self.num_items + 1)), count)
            ]
        elif template == "tpcc-payment":
            params["customer"] = rng.randint(1, self.customers_per_district)
            params["amount"] = round(rng.uniform(1.0, 500.0), 2)
            sequence = self._history_seq.get(client_id, 0) + 1
            self._history_seq[client_id] = sequence
            digits = "".join(ch for ch in client_id if ch.isdigit()) or "0"
            params["history_id"] = int(digits) * 10_000_000 + sequence
        elif template == "tpcc-order-status":
            params["customer"] = rng.randint(1, self.customers_per_district)
        elif template == "tpcc-delivery":
            params["carrier"] = rng.randint(1, 10)
        elif template == "tpcc-stock-level":
            params["threshold"] = rng.randint(10, 20)
        return TxnCall(template, params)

    def think_time_ms(self, client_id: str, rng: Rng) -> float:
        if self.think_time_mean_ms <= 0:
            return 0.0
        return rng.exponential(self.think_time_mean_ms)

    def performance_params(self) -> PerformanceParams:
        # Order-entry statements are similar in weight to TPC-W's.
        return PerformanceParams(
            read_stmt_ms=1.2,
            write_stmt_ms=2.2,
            commit_base_ms=0.6,
            commit_per_op_ms=0.15,
            refresh_base_ms=0.8,
            refresh_per_op_ms=1.2,
            eager_flush_base_ms=1.0,
            eager_flush_per_op_ms=2.0,
        )
