"""Transaction templates and workload definitions.

The paper's fine-grained technique relies on automated environments where
"a predefined set of transactions is used; each transaction consists of a
sequence of prepared statements" (Section III-C).  A
:class:`TransactionTemplate` is exactly that: a named body of prepared
statements over a declared **table-set** — the statically-known superset of
tables the transaction can access.

A :class:`Workload` bundles a schema, a catalog of templates, initial data
loading, and a generator that picks the next transaction for a client.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from ..middleware.perfmodel import PerformanceParams
from ..sim.rng import Rng
from ..storage.database import Database
from ..storage.schema import TableSchema

__all__ = [
    "TransactionTemplate",
    "TemplateCatalog",
    "Workload",
    "TxnCall",
    "sql_template",
]


@dataclass(frozen=True)
class TransactionTemplate:
    """A named transaction consisting of prepared statements.

    ``body(ctx, params)`` executes the statements against a
    :class:`~repro.middleware.context.TxnContext`.  ``table_set`` is the
    statically extracted set of tables those statements can access; the load
    balancer's SC-FINE policy uses it (and only it) to compute the start
    version.  ``is_update`` declares whether the template *may* write — used
    by workload mix accounting, not for correctness (the proxy decides
    read-only vs update from the actual writeset).
    """

    name: str
    table_set: frozenset[str]
    body: Callable[[Any, Mapping[str, Any]], Any]
    is_update: bool = False

    def __post_init__(self):
        if not self.name:
            raise ValueError("template name must be non-empty")
        object.__setattr__(self, "table_set", frozenset(self.table_set))
        if not self.table_set:
            raise ValueError(f"template {self.name!r} declares an empty table-set")


class TemplateCatalog:
    """The transaction-identifier → template dictionary.

    The paper stores table-set information in the database and has the load
    balancer fetch it once; this catalog is that fetched dictionary.
    """

    def __init__(self, templates: Iterable[TransactionTemplate] = ()):
        self._templates: dict[str, TransactionTemplate] = {}
        for template in templates:
            self.register(template)

    def register(self, template: TransactionTemplate) -> None:
        """Add a template; names must be unique."""
        if template.name in self._templates:
            raise ValueError(f"duplicate template {template.name!r}")
        self._templates[template.name] = template

    def get(self, name: str, default=None) -> Optional[TransactionTemplate]:
        return self._templates.get(name, default)

    def __getitem__(self, name: str) -> TransactionTemplate:
        return self._templates[name]

    def __contains__(self, name: str) -> bool:
        return name in self._templates

    def __iter__(self):
        return iter(self._templates.values())

    def __len__(self) -> int:
        return len(self._templates)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._templates)

    def table_set(self, name: str) -> frozenset[str]:
        """The table-set for a transaction identifier."""
        return self._templates[name].table_set


def sql_template(name: str, statements: Sequence[str]) -> TransactionTemplate:
    """Build a transaction template from prepared SQL statements.

    This is the paper's automated-environment model verbatim: the
    statements are parsed once, the **table-set is extracted statically**
    from the SQL text (Section III-C), and whether the template is an
    update follows from the statement verbs.  The body executes the parsed
    statements in order with the call's parameters bound to the ``:name``
    placeholders, returning the list of per-statement results.
    """
    from ..storage import sql as _sql

    # Compile through the process-wide plan cache: every client running the
    # same template shares one parsed AST and one compiled plan per text.
    plans = [_sql.compile_statement(text) for text in statements]
    if not plans:
        raise ValueError(f"template {name!r} has no statements")
    parsed = tuple(plan.statement for plan in plans)
    tables = _sql.table_set(parsed)
    is_update = any(statement.is_update for statement in parsed)

    def body(ctx, params):
        return [plan.execute(ctx, params) for plan in plans]

    body.__name__ = f"sql_{name}"
    return TransactionTemplate(
        name=name, table_set=tables, body=body, is_update=is_update
    )


@dataclass(frozen=True)
class TxnCall:
    """One transaction invocation a client should issue: which template,
    with which parameters."""

    template: str
    params: Mapping[str, Any]


class Workload:
    """Base class for benchmark workloads.

    Subclasses define the schema, the template catalog, the initial
    database population and the per-client transaction mix.
    """

    #: human-readable workload name
    name: str = "workload"

    def schemas(self) -> Sequence[TableSchema]:
        """The table schemas this workload requires."""
        raise NotImplementedError

    def catalog(self) -> TemplateCatalog:
        """The workload's transaction templates."""
        raise NotImplementedError

    def populate(self, database: Database, rng: Rng) -> None:
        """Load the initial data set into a database copy.

        Called once per replica with an identical RNG stream so all copies
        start bit-identical at version 0.
        """
        raise NotImplementedError

    def next_call(self, client_id: str, rng: Rng) -> TxnCall:
        """Pick the next transaction for ``client_id``."""
        raise NotImplementedError

    def think_time_ms(self, client_id: str, rng: Rng) -> float:
        """Client think time before the next request (0 = back-to-back)."""
        return 0.0

    def performance_params(self) -> PerformanceParams:
        """The cluster performance model this workload is calibrated for."""
        return PerformanceParams()
