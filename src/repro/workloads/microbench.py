"""The paper's customized micro-benchmark (Section V-B).

Database: 4 tables of 10,000 records each; every table has an integer
primary key, an integer field and a 100-character text field.

Workload: 40 transaction types; each either retrieves or updates one random
record of one table.  The read-only/update ratio varies between 0/40 and
40/0 — :class:`MicroBenchmark` takes the number of update types out of 40
(or any total).  Clients issue uniformly chosen transaction types
back-to-back in a closed loop (no think time).
"""

from __future__ import annotations

from typing import Sequence

from ..middleware.perfmodel import PerformanceParams
from ..sim.rng import Rng
from ..storage.database import Database
from ..storage.schema import Column, TableSchema
from .base import TemplateCatalog, TransactionTemplate, TxnCall, Workload

__all__ = ["MicroBenchmark"]

_FILLER = "x" * 100


def _read_body(tables: tuple[str, ...]):
    def body(ctx, params):
        rows = [ctx.read(table, params["key"]) for table in tables]
        return rows[0] if len(rows) == 1 else rows

    body.__name__ = f"read_{'_'.join(tables)}"
    return body


def _update_body(tables: tuple[str, ...]):
    def body(ctx, params):
        result = None
        for table in tables:
            row = ctx.read_required(table, params["key"])
            ctx.update(table, params["key"], {"payload": row["payload"] + 1})
            result = row["payload"] + 1
        return result

    body.__name__ = f"update_{'_'.join(tables)}"
    return body


class MicroBenchmark(Workload):
    """4 tables x N records; single-record read or update transactions."""

    name = "microbench"

    def __init__(
        self,
        update_types: int = 10,
        total_types: int = 40,
        num_tables: int = 4,
        rows_per_table: int = 10_000,
        tables_per_txn: int = 1,
    ):
        if not 0 <= update_types <= total_types:
            raise ValueError("update_types must be within [0, total_types]")
        if total_types % num_tables:
            raise ValueError("total_types must be a multiple of num_tables")
        if not 1 <= tables_per_txn <= num_tables:
            raise ValueError("tables_per_txn must be within [1, num_tables]")
        self.update_types = update_types
        self.total_types = total_types
        self.num_tables = num_tables
        self.rows_per_table = rows_per_table
        #: tables each transaction touches (1 in the paper; the table-set
        #: ablation bench raises it to shrink SC-FINE's advantage)
        self.tables_per_txn = tables_per_txn
        self.tables = [f"t{i}" for i in range(num_tables)]
        self._catalog = self._build_catalog()

    @property
    def update_fraction(self) -> float:
        """Fraction of transaction types that are updates."""
        return self.update_types / self.total_types

    def _build_catalog(self) -> TemplateCatalog:
        catalog = TemplateCatalog()
        # Types are dealt round-robin over the tables; the first
        # ``update_types`` of them are updates, the rest reads — every table
        # gets the same read/update split, as in the paper's uniform mix.
        for type_index in range(self.total_types):
            tables = tuple(
                self.tables[(type_index + offset) % self.num_tables]
                for offset in range(self.tables_per_txn)
            )
            is_update = type_index < self.update_types
            kind = "update" if is_update else "read"
            catalog.register(
                TransactionTemplate(
                    name=f"micro-{kind}-{type_index}",
                    table_set=frozenset(tables),
                    body=_update_body(tables) if is_update else _read_body(tables),
                    is_update=is_update,
                )
            )
        return catalog

    # -- Workload interface ----------------------------------------------------
    def schemas(self) -> Sequence[TableSchema]:
        return [
            TableSchema(
                name=table,
                columns=[
                    Column("id", int),
                    Column("payload", int),
                    Column("filler", str),
                ],
                primary_key="id",
            )
            for table in self.tables
        ]

    def catalog(self) -> TemplateCatalog:
        return self._catalog

    def populate(self, database: Database, rng: Rng) -> None:
        for table in self.tables:
            for key in range(1, self.rows_per_table + 1):
                database.load_row(
                    table, {"id": key, "payload": rng.randint(0, 1000), "filler": _FILLER}
                )

    def next_call(self, client_id: str, rng: Rng) -> TxnCall:
        template = rng.choice(self._catalog.names)
        return TxnCall(template, {"key": rng.randint(1, self.rows_per_table)})

    def think_time_ms(self, client_id: str, rng: Rng) -> float:
        return 0.0  # back-to-back, as in the paper

    def performance_params(self) -> PerformanceParams:
        return PerformanceParams()
