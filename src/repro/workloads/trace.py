"""Trace-driven workloads: record a run's transaction calls, replay them.

Comparing two consistency configurations on a *stochastic* workload mixes
two sources of variance: the configurations and the draw of transactions.
A trace pins the second one down — record the exact call sequence each
client issued once, then replay it verbatim under every configuration, so
differences are attributable to the configurations alone (paired
comparison).

* :class:`TraceRecorder` wraps any workload and records each client's call
  sequence as it is generated;
* :meth:`TraceRecorder.freeze` produces a :class:`TraceWorkload` that
  replays those sequences deterministically (wrapping around when a client
  exhausts its recorded calls, so run length is unconstrained);
* traces serialize to JSON-lines for archival
  (:meth:`TraceWorkload.save` / :meth:`TraceWorkload.load`).
"""

from __future__ import annotations

import json

from ..sim.rng import Rng
from ..storage.database import Database
from .base import TemplateCatalog, TxnCall, Workload

__all__ = ["TraceRecorder", "TraceWorkload"]


class TraceRecorder(Workload):
    """A pass-through workload that records every generated call."""

    def __init__(self, inner: Workload):
        self.inner = inner
        self.name = f"{inner.name}-recorder"
        self.calls: dict[str, list[TxnCall]] = {}

    # -- recording pass-through ---------------------------------------------
    def next_call(self, client_id: str, rng: Rng) -> TxnCall:
        call = self.inner.next_call(client_id, rng)
        self.calls.setdefault(client_id, []).append(call)
        return call

    def freeze(self) -> "TraceWorkload":
        """The recorded trace as a replayable workload."""
        return TraceWorkload(self.inner, {
            client: list(calls) for client, calls in self.calls.items()
        })

    # -- delegation -----------------------------------------------------------
    def schemas(self):
        return self.inner.schemas()

    def catalog(self) -> TemplateCatalog:
        return self.inner.catalog()

    def populate(self, database: Database, rng: Rng) -> None:
        self.inner.populate(database, rng)

    def think_time_ms(self, client_id: str, rng: Rng) -> float:
        return self.inner.think_time_ms(client_id, rng)

    def performance_params(self):
        return self.inner.performance_params()


class TraceWorkload(Workload):
    """Replays recorded per-client call sequences deterministically."""

    def __init__(self, base: Workload, calls: dict[str, list[TxnCall]]):
        if not calls:
            raise ValueError("trace has no recorded calls")
        for client, sequence in calls.items():
            if not sequence:
                raise ValueError(f"trace for client {client!r} is empty")
        self.base = base
        self.name = f"{base.name}-trace"
        self._calls = calls
        self._cursor: dict[str, int] = {client: 0 for client in calls}

    # -- replay --------------------------------------------------------------
    def next_call(self, client_id: str, rng: Rng) -> TxnCall:
        sequence = self._calls.get(client_id)
        if sequence is None:
            # Unknown client: replay round-robin over the recorded clients
            # so extra clients still issue representative traffic.
            donor = sorted(self._calls)[hash(client_id) % len(self._calls)]
            sequence = self._calls[donor]
            client_id = donor
        index = self._cursor[client_id]
        self._cursor[client_id] = (index + 1) % len(sequence)
        return sequence[index]

    @property
    def total_calls(self) -> int:
        """Recorded calls across all clients."""
        return sum(len(sequence) for sequence in self._calls.values())

    @property
    def clients(self) -> tuple[str, ...]:
        return tuple(sorted(self._calls))

    def reset(self) -> None:
        """Rewind every client's cursor (fresh replay)."""
        for client in self._cursor:
            self._cursor[client] = 0

    # -- persistence -----------------------------------------------------------
    def save(self, path: str) -> None:
        """Write the trace as JSON lines: one record per call."""
        with open(path, "w", encoding="utf-8") as f:
            for client in sorted(self._calls):
                for call in self._calls[client]:
                    f.write(json.dumps({
                        "client": client,
                        "template": call.template,
                        "params": dict(call.params),
                    }, sort_keys=True) + "\n")

    @staticmethod
    def load(base: Workload, path: str) -> "TraceWorkload":
        """Rebuild a trace written by :meth:`save`."""
        calls: dict[str, list[TxnCall]] = {}
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                calls.setdefault(record["client"], []).append(
                    TxnCall(record["template"], record["params"])
                )
        return TraceWorkload(base, calls)

    # -- delegation -----------------------------------------------------------
    def schemas(self):
        return self.base.schemas()

    def catalog(self) -> TemplateCatalog:
        return self.base.catalog()

    def populate(self, database: Database, rng: Rng) -> None:
        self.base.populate(database, rng)

    def think_time_ms(self, client_id: str, rng: Rng) -> float:
        return self.base.think_time_ms(client_id, rng)

    def performance_params(self):
        return self.base.performance_params()
