"""ASCII line charts for the figure benches.

The paper's evaluation is a set of line plots; the benchmark harness
regenerates the underlying series and this module renders them as terminal
charts so the *shape* — crossovers, saturation, divergence — is visible in
the bench output without any plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["line_chart"]

#: plot symbols assigned to series in order
_SYMBOLS = "ox*+#@%&"


def _scale(value: float, low: float, high: float, steps: int) -> int:
    if high <= low:
        return 0
    ratio = (value - low) / (high - low)
    return min(steps - 1, max(0, round(ratio * (steps - 1))))


def line_chart(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    width: int = 64,
    height: int = 16,
) -> str:
    """Render one chart: ``series`` maps curve labels to y-values aligned
    with ``x_values``.  Curves get one symbol each; the legend maps them
    back.  Y starts at zero (the paper's plots do), X spans the data."""
    if not x_values:
        raise ValueError("x_values must be non-empty")
    for label, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {label!r} has {len(values)} points for "
                f"{len(x_values)} x values"
            )
    if not series:
        raise ValueError("at least one series required")

    y_max = max((max(values) for values in series.values()), default=1.0)
    y_max = y_max if y_max > 0 else 1.0
    x_min, x_max = min(x_values), max(x_values)

    grid = [[" "] * width for _ in range(height)]
    for index, (label, values) in enumerate(series.items()):
        symbol = _SYMBOLS[index % len(_SYMBOLS)]
        previous = None
        for x, y in zip(x_values, values):
            column = _scale(x, x_min, x_max, width)
            row = height - 1 - _scale(y, 0.0, y_max, height)
            # Linear interpolation between consecutive points keeps curves
            # readable when x points are sparse.
            if previous is not None:
                prev_col, prev_row = previous
                span = max(abs(column - prev_col), abs(row - prev_row), 1)
                for step in range(1, span):
                    inter_col = prev_col + (column - prev_col) * step // span
                    inter_row = prev_row + (row - prev_row) * step // span
                    if grid[inter_row][inter_col] == " ":
                        grid[inter_row][inter_col] = "."
            grid[row][column] = symbol
            previous = (column, row)

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (0 .. {y_max:g})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_min:g} .. {x_max:g}")
    legend = "  ".join(
        f"{_SYMBOLS[i % len(_SYMBOLS)]}={label}" for i, label in enumerate(series)
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)
