"""Paper-style result tables.

Helpers that render experiment results the way the paper presents them: one
row per configuration (or per x-axis point) with aligned numeric columns —
the same rows/series Figures 3–7 plot.
"""

from __future__ import annotations

import warnings
from typing import Mapping, Optional, Sequence

from .stages import STAGE_NAMES, StageTimings

__all__ = [
    "format_table",
    "format_series",
    "format_breakdown",
    "render",
    "format_bootstrap_stats",
    "format_partition_stats",
    "format_scrub_stats",
]

#: section names accepted by :func:`render`, in display order
SECTIONS = ("summary", "partition", "scrub", "bootstrap", "replicas", "trace")


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
    floatfmt: str = "{:.1f}",
) -> str:
    """Render an aligned text table."""
    rendered_rows = [
        [floatfmt.format(cell) if isinstance(cell, float) else str(cell) for cell in row]
        for row in rows
    ]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered_rows)) if rendered_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence,
    series: Mapping[str, Sequence[float]],
    title: str = "",
    floatfmt: str = "{:.1f}",
) -> str:
    """Render one figure's data: x-axis column plus one column per curve.

    ``series`` maps a curve label (e.g. ``"SC-FINE"``) to its y-values,
    aligned with ``x_values``.
    """
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x, *(values[i] for values in series.values())])
    return format_table(headers, rows, title=title, floatfmt=floatfmt)


def format_breakdown(
    breakdowns: Mapping[str, StageTimings],
    title: str = "",
) -> str:
    """Render a Figure-4 style latency breakdown: one row per configuration,
    one column per stage."""
    headers = ["config", *STAGE_NAMES, "total"]
    rows = []
    for label, stages in breakdowns.items():
        d = stages.as_dict()
        rows.append([label, *(d[s] for s in STAGE_NAMES), stages.total])
    return format_table(headers, rows, title=title, floatfmt="{:.2f}")


def _render_partition(certifier: Mapping, balancer: Mapping, title: str = "") -> str:
    """One summary block plus one row per certifier shard."""
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "partitions={}  single-commits={}  cross-commits={}  "
        "cross-shard-stalls={}  cross-dispatched={}".format(
            certifier.get("num_partitions", 1),
            certifier.get("single_partition_commits", 0),
            certifier.get("cross_partition_commits", 0),
            certifier.get("cross_shard_stalls", 0),
            balancer.get("cross_partition_dispatched", 0),
        )
    )
    lines.append(
        "departed-purged={}  stale-recovery-refusals={}".format(
            certifier.get("departed_purged", 0),
            certifier.get("stale_recovery_refusals", 0),
        )
    )
    shards = certifier.get("shards", {})
    if shards:
        versions = balancer.get("partition_versions", {})
        headers = ["shard", "certified", "aborts", "queue", "log", "last_global", "v_ack"]
        rows = [
            [
                p,
                shard.get("certified", 0),
                shard.get("aborts", 0),
                shard.get("queue_length", 0),
                shard.get("log_length", 0),
                shard.get("last_global", 0),
                versions.get(p, 0),
            ]
            for p, shard in sorted(shards.items())
        ]
        lines.append(format_table(headers, rows))
    return "\n".join(lines)


def _render_scrub(scrub: Optional[Mapping], title: str = "") -> str:
    lines = []
    if title:
        lines.append(title)
    if scrub is None:
        lines.append("scrubbing disabled (scrub_interval_ms=None)")
        return "\n".join(lines)
    lines.append(
        "rounds={}  replies={}  skipped: unaligned={} unanswerable={}".format(
            scrub.get("scrub_rounds", 0),
            scrub.get("digest_replies", 0),
            scrub.get("unaligned_skips", 0),
            scrub.get("unanswerable_skips", 0),
        )
    )
    lines.append(
        "divergences={} (tables={})  quarantines={}  readmissions={}".format(
            scrub.get("divergences_detected", 0),
            scrub.get("diverged_tables_detected", 0),
            scrub.get("quarantines", 0),
            scrub.get("readmissions", 0),
        )
    )
    lines.append(
        "repairs={}  rows-repaired={}  mean-quarantine={:.1f}ms".format(
            scrub.get("repairs_completed", 0),
            scrub.get("rows_repaired", 0),
            scrub.get("mean_quarantine_ms", 0.0),
        )
    )
    quarantined = scrub.get("currently_quarantined", [])
    if quarantined:
        lines.append("still quarantined: " + ", ".join(quarantined))
    return "\n".join(lines)


def _render_bootstrap(boot: Optional[Mapping], title: str = "") -> str:
    lines = []
    if title:
        lines.append(title)
    if boot is None:
        lines.append("replica lifecycle disabled (bootstrap_enabled=False)")
        return "\n".join(lines)
    lines.append(
        "bootstraps: started={} completed={}  rebootstraps={}".format(
            boot.get("bootstraps_started", 0),
            boot.get("bootstraps_completed", 0),
            boot.get("rebootstraps_triggered", 0),
        )
    )
    lines.append(
        "checkpoints: requested={} forwarded={}  catch-up-rounds={}".format(
            boot.get("checkpoints_requested", 0),
            boot.get("checkpoints_forwarded", 0),
            boot.get("catch_up_rounds", 0),
        )
    )
    active = boot.get("active", [])
    if active:
        lines.append("still bootstrapping: " + ", ".join(active))
    return "\n".join(lines)


def _render_summary(snapshot: Mapping) -> str:
    kernel = snapshot.get("kernel") or {}
    return (
        "t={:.0f}ms  level={}  V_commit={}  horizon={}  "
        "certified={}  aborts={}  kernel-events={}".format(
            snapshot.get("time_ms", 0.0),
            snapshot.get("level", "?"),
            snapshot.get("commit_version", 0),
            snapshot.get("replication_horizon", 0),
            snapshot.get("certified", 0),
            snapshot.get("certification_aborts", 0),
            kernel.get("events_processed", 0),
        )
    )


def _render_replicas(replicas: Mapping) -> str:
    headers = ["replica", "v_local", "lag", "pending", "committed", "aborted", "crashed"]
    rows = [
        [
            name,
            r.get("v_local", 0),
            r.get("lag", 0),
            r.get("pending_refresh", 0),
            r.get("committed", 0),
            r.get("aborted", 0),
            r.get("crashed", False),
        ]
        for name, r in sorted(replicas.items())
    ]
    return format_table(headers, rows)


def _render_trace(trace: Optional[Mapping]) -> str:
    if not trace or not trace.get("enabled"):
        return "tracing disabled (trace_enabled=False)"
    return "tracing: spans={} dropped={} sample_rate={} sampled-requests={}".format(
        trace.get("spans", 0),
        trace.get("dropped", 0),
        trace.get("sample_rate", 1.0),
        trace.get("sampled_requests", 0),
    )


def _snapshot_of(source) -> Mapping:
    """Accept either a :class:`~repro.metrics.registry.MetricsRegistry` or a
    legacy ``ReplicatedDatabase.stats()`` mapping; return the legacy shape."""
    if hasattr(source, "tree"):  # a MetricsRegistry
        cert = source.tree("certifier", raw=True) or {}
        cluster = source.tree("cluster", raw=True) or {}
        return {
            "time_ms": cluster.get("time_ms", 0.0),
            "level": cluster.get("level", "?"),
            "commit_version": cert.get("commit_version", 0),
            "replication_horizon": cert.get("replication_horizon", 0),
            "certified": cert.get("certified", 0),
            "certification_aborts": cert.get("aborts", 0),
            "kernel": source.tree("kernel", raw=True),
            "partition": {
                "certifier": cert,
                "balancer": source.tree("balancer", raw=True) or {},
            },
            "scrub": source.tree("scrub", raw=True),
            "bootstrap": source.tree("bootstrap", raw=True),
            "replicas": source.tree("replica", raw=True) or {},
            "trace": source.tree("trace", raw=True),
        }
    return source


def render(source, sections: Sequence[str] = ("summary", "partition", "scrub", "bootstrap")) -> str:
    """Render an observability report from a metrics source.

    ``source`` is either a :class:`~repro.metrics.registry.MetricsRegistry`
    (e.g. ``cluster.metrics``) or a legacy
    :meth:`~repro.core.cluster.ReplicatedDatabase.stats` snapshot.
    ``sections`` picks which blocks to include, in order, from
    :data:`SECTIONS`. This supersedes the per-subsystem ``format_*_stats``
    helpers, which now delegate here.
    """
    unknown = [s for s in sections if s not in SECTIONS]
    if unknown:
        raise ValueError(f"unknown report sections {unknown!r}; choose from {SECTIONS}")
    snapshot = _snapshot_of(source)
    partition = snapshot.get("partition") or {}
    blocks = []
    for section in sections:
        if section == "summary":
            blocks.append(_render_summary(snapshot))
        elif section == "partition":
            blocks.append(
                _render_partition(
                    partition.get("certifier", {}),
                    partition.get("balancer", {}),
                    title="-- commit pipeline --",
                )
            )
        elif section == "scrub":
            blocks.append(_render_scrub(snapshot.get("scrub"), title="-- anti-entropy --"))
        elif section == "bootstrap":
            blocks.append(
                _render_bootstrap(snapshot.get("bootstrap"), title="-- replica lifecycle --")
            )
        elif section == "replicas":
            blocks.append(_render_replicas(snapshot.get("replicas") or {}))
        elif section == "trace":
            blocks.append(_render_trace(snapshot.get("trace")))
    return "\n".join(blocks)


# -- deprecated per-subsystem helpers (use render() instead) ------------------


def _deprecated(old: str, instead: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use repro.metrics.report.{instead}",
        DeprecationWarning,
        stacklevel=3,
    )


def format_partition_stats(stats: Mapping, title: str = "") -> str:
    """Deprecated: use :func:`render` with ``sections=("partition",)``.

    ``stats`` is either the full cluster snapshot (the ``"partition"`` key
    is used) or that key's value directly.
    """
    _deprecated("format_partition_stats", 'render(..., sections=("partition",))')
    partition = stats.get("partition", stats)
    return _render_partition(
        partition.get("certifier", {}), partition.get("balancer", {}), title=title
    )


def format_scrub_stats(stats: Mapping, title: str = "") -> str:
    """Deprecated: use :func:`render` with ``sections=("scrub",)``.

    ``stats`` is either the full cluster snapshot (the ``"scrub"`` key is
    used) or that key's value directly.
    """
    _deprecated("format_scrub_stats", 'render(..., sections=("scrub",))')
    scrub = stats.get("scrub", stats) if "scrub" in stats else stats
    return _render_scrub(scrub, title=title)


def format_bootstrap_stats(stats: Mapping, title: str = "") -> str:
    """Deprecated: use :func:`render` with ``sections=("bootstrap",)``.

    ``stats`` is either the full cluster snapshot (the ``"bootstrap"`` key
    is used) or that key's value directly.
    """
    _deprecated("format_bootstrap_stats", 'render(..., sections=("bootstrap",))')
    boot = stats.get("bootstrap", stats) if "bootstrap" in stats else stats
    return _render_bootstrap(boot, title=title)
