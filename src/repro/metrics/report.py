"""Paper-style result tables.

Helpers that render experiment results the way the paper presents them: one
row per configuration (or per x-axis point) with aligned numeric columns —
the same rows/series Figures 3–7 plot.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .stages import STAGE_NAMES, StageTimings

__all__ = [
    "format_table",
    "format_series",
    "format_breakdown",
    "format_bootstrap_stats",
    "format_partition_stats",
    "format_scrub_stats",
]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
    floatfmt: str = "{:.1f}",
) -> str:
    """Render an aligned text table."""
    rendered_rows = [
        [floatfmt.format(cell) if isinstance(cell, float) else str(cell) for cell in row]
        for row in rows
    ]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered_rows)) if rendered_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence,
    series: Mapping[str, Sequence[float]],
    title: str = "",
    floatfmt: str = "{:.1f}",
) -> str:
    """Render one figure's data: x-axis column plus one column per curve.

    ``series`` maps a curve label (e.g. ``"SC-FINE"``) to its y-values,
    aligned with ``x_values``.
    """
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x, *(values[i] for values in series.values())])
    return format_table(headers, rows, title=title, floatfmt=floatfmt)


def format_breakdown(
    breakdowns: Mapping[str, StageTimings],
    title: str = "",
) -> str:
    """Render a Figure-4 style latency breakdown: one row per configuration,
    one column per stage."""
    headers = ["config", *STAGE_NAMES, "total"]
    rows = []
    for label, stages in breakdowns.items():
        d = stages.as_dict()
        rows.append([label, *(d[s] for s in STAGE_NAMES), stages.total])
    return format_table(headers, rows, title=title, floatfmt="{:.2f}")


def format_partition_stats(stats: Mapping, title: str = "") -> str:
    """Render the partitioned-commit-pipeline view of a cluster stats dict.

    ``stats`` is either the full :meth:`~repro.core.cluster.ReplicatedDatabase.stats`
    snapshot (the ``"partition"`` key is used) or that key's value directly:
    ``{"certifier": Certifier.stats(), "balancer": LoadBalancer.stats()}``.
    One summary block plus one row per certifier shard.
    """
    partition = stats.get("partition", stats)
    certifier = partition.get("certifier", {})
    balancer = partition.get("balancer", {})
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "partitions={}  single-commits={}  cross-commits={}  "
        "cross-shard-stalls={}  cross-dispatched={}".format(
            certifier.get("num_partitions", 1),
            certifier.get("single_partition_commits", 0),
            certifier.get("cross_partition_commits", 0),
            certifier.get("cross_shard_stalls", 0),
            balancer.get("cross_partition_dispatched", 0),
        )
    )
    lines.append(
        "departed-purged={}  stale-recovery-refusals={}".format(
            certifier.get("departed_purged", 0),
            certifier.get("stale_recovery_refusals", 0),
        )
    )
    shards = certifier.get("shards", {})
    if shards:
        versions = balancer.get("partition_versions", {})
        headers = ["shard", "certified", "aborts", "queue", "log", "last_global", "v_ack"]
        rows = [
            [
                p,
                shard.get("certified", 0),
                shard.get("aborts", 0),
                shard.get("queue_length", 0),
                shard.get("log_length", 0),
                shard.get("last_global", 0),
                versions.get(p, 0),
            ]
            for p, shard in sorted(shards.items())
        ]
        lines.append(format_table(headers, rows))
    return "\n".join(lines)


def format_scrub_stats(stats: Mapping, title: str = "") -> str:
    """Render the anti-entropy view of a cluster stats dict.

    ``stats`` is either the full :meth:`~repro.core.cluster.ReplicatedDatabase.stats`
    snapshot (the ``"scrub"`` key is used) or that key's value directly
    (:meth:`~repro.middleware.scrubber.Scrubber.stats`).
    """
    scrub = stats.get("scrub", stats) if "scrub" in stats else stats
    lines = []
    if title:
        lines.append(title)
    if scrub is None:
        lines.append("scrubbing disabled (scrub_interval_ms=None)")
        return "\n".join(lines)
    lines.append(
        "rounds={}  replies={}  skipped: unaligned={} unanswerable={}".format(
            scrub.get("scrub_rounds", 0),
            scrub.get("digest_replies", 0),
            scrub.get("unaligned_skips", 0),
            scrub.get("unanswerable_skips", 0),
        )
    )
    lines.append(
        "divergences={} (tables={})  quarantines={}  readmissions={}".format(
            scrub.get("divergences_detected", 0),
            scrub.get("diverged_tables_detected", 0),
            scrub.get("quarantines", 0),
            scrub.get("readmissions", 0),
        )
    )
    lines.append(
        "repairs={}  rows-repaired={}  mean-quarantine={:.1f}ms".format(
            scrub.get("repairs_completed", 0),
            scrub.get("rows_repaired", 0),
            scrub.get("mean_quarantine_ms", 0.0),
        )
    )
    quarantined = scrub.get("currently_quarantined", [])
    if quarantined:
        lines.append("still quarantined: " + ", ".join(quarantined))
    return "\n".join(lines)


def format_bootstrap_stats(stats: Mapping, title: str = "") -> str:
    """Render the replica-lifecycle view of a cluster stats dict.

    ``stats`` is either the full :meth:`~repro.core.cluster.ReplicatedDatabase.stats`
    snapshot (the ``"bootstrap"`` key is used) or that key's value directly
    (:meth:`~repro.middleware.bootstrap.BootstrapCoordinator.stats`).
    """
    boot = stats.get("bootstrap", stats) if "bootstrap" in stats else stats
    lines = []
    if title:
        lines.append(title)
    if boot is None:
        lines.append("replica lifecycle disabled (bootstrap_enabled=False)")
        return "\n".join(lines)
    lines.append(
        "bootstraps: started={} completed={}  rebootstraps={}".format(
            boot.get("bootstraps_started", 0),
            boot.get("bootstraps_completed", 0),
            boot.get("rebootstraps_triggered", 0),
        )
    )
    lines.append(
        "checkpoints: requested={} forwarded={}  catch-up-rounds={}".format(
            boot.get("checkpoints_requested", 0),
            boot.get("checkpoints_forwarded", 0),
            boot.get("catch_up_rounds", 0),
        )
    )
    active = boot.get("active", [])
    if active:
        lines.append("still bootstrapping: " + ", ".join(active))
    return "\n".join(lines)
