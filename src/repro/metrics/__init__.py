"""Metrics: throughput, response time, per-stage latency breakdowns."""

from .ascii_chart import line_chart
from .collector import MetricsCollector, MetricsSummary, TxnSample
from .profiler import PROFILER, Profiler
from .report import (
    format_bootstrap_stats,
    format_breakdown,
    format_partition_stats,
    format_scrub_stats,
    format_series,
    format_table,
)
from .stages import STAGE_NAMES, StageTimings

__all__ = [
    "MetricsCollector",
    "PROFILER",
    "Profiler",
    "line_chart",
    "MetricsSummary",
    "STAGE_NAMES",
    "StageTimings",
    "TxnSample",
    "format_bootstrap_stats",
    "format_breakdown",
    "format_partition_stats",
    "format_scrub_stats",
    "format_series",
    "format_table",
]
