"""Metrics: throughput, response time, per-stage latency breakdowns,
the unified metrics registry, and per-transaction tracing."""

from .ascii_chart import line_chart
from .collector import MetricsCollector, MetricsSummary, TxnSample
from .profiler import PROFILER, Profiler
from .registry import MetricsRegistry, latest_registry
from .report import (
    format_bootstrap_stats,
    format_breakdown,
    format_partition_stats,
    format_scrub_stats,
    format_series,
    format_table,
    render,
)
from .stages import STAGE_NAMES, StageTimings
from .tracing import TRACER, Span, Tracer, trace_invariant_report

__all__ = [
    "MetricsCollector",
    "MetricsRegistry",
    "PROFILER",
    "Profiler",
    "Span",
    "TRACER",
    "Tracer",
    "line_chart",
    "latest_registry",
    "MetricsSummary",
    "STAGE_NAMES",
    "StageTimings",
    "TxnSample",
    "format_bootstrap_stats",
    "format_breakdown",
    "format_partition_stats",
    "format_scrub_stats",
    "format_series",
    "format_table",
    "render",
    "trace_invariant_report",
]
