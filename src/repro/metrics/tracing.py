"""Per-transaction causal tracing in virtual time.

The tracer records *spans* — named intervals of virtual milliseconds —
across the full transaction lifecycle: client submit, load-balancer
admission/queueing/dispatch, the proxy's pipeline stages, certification
(including per-shard slot acquisition in partitioned mode), decision
logging, and the refresh apply of each commit on every other replica.
Spans are linked by ``request_id``, ``txn_id`` and ``commit_version`` so
a single transaction's trace can be reassembled cluster-wide and the
question "which stage ate the p99" answered directly.

Design follows the :data:`~repro.metrics.profiler.PROFILER` pattern:

* a module-level :data:`TRACER` singleton, disabled by default;
* every hook site guards with ``if TRACER.enabled:`` so the defaults-off
  path allocates nothing (the golden-fingerprint equivalence tests pin
  it byte-identical);
* even when enabled the tracer only *records* — it never schedules
  events, draws from the simulation's RNG streams, or yields — so
  enabling it cannot change virtual-time behaviour either (asserted by
  a property test).

Sampling is per transaction and deterministic: a multiplicative hash of
the client request id is compared against ``sample_rate``, so the same
seed traces the same transactions regardless of what else runs, and no
RNG stream is consumed.  The collector is a bounded ring buffer
(``capacity`` spans; the oldest are dropped and counted).

Exporters produce Chrome-trace JSON (load ``chrome://tracing`` or
https://ui.perfetto.dev) and JSONL; query helpers (:meth:`Tracer.spans_for_txn`,
:meth:`Tracer.critical_path`, :meth:`Tracer.stage_histograms`) serve
tests and benchmarks without leaving Python.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Span",
    "Tracer",
    "TRACER",
    "trace_invariant_report",
]

# Knuth's multiplicative hash constant — spreads sequential request ids
# uniformly over 32 bits for deterministic, RNG-free sampling.
_HASH_MULT = 2654435761
_HASH_MOD = 1 << 32


class Span:
    """One named interval of virtual time, tagged with correlation ids."""

    __slots__ = (
        "name",
        "component",
        "start",
        "end",
        "request_id",
        "txn_id",
        "commit_version",
        "attrs",
        "run",
    )

    def __init__(
        self,
        name: str,
        component: str,
        start: float,
        end: float,
        request_id: Optional[int] = None,
        txn_id: Optional[int] = None,
        commit_version: Optional[int] = None,
        attrs: Optional[dict] = None,
        run: int = 0,
    ):
        self.name = name
        self.component = component
        self.start = start
        self.end = end
        self.request_id = request_id
        self.txn_id = txn_id
        self.commit_version = commit_version
        self.attrs = attrs
        #: which cluster build produced this span — commands that sweep
        #: several clusters (e.g. ``repro fig5 --trace``) restart request
        #: ids and commit versions from 1 each run, so correlation ids
        #: are only unique within one ``run``
        self.run = run

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        d = {
            "name": self.name,
            "component": self.component,
            "start": self.start,
            "end": self.end,
            "duration": self.end - self.start,
        }
        if self.request_id is not None:
            d["request_id"] = self.request_id
        if self.txn_id is not None:
            d["txn_id"] = self.txn_id
        if self.commit_version is not None:
            d["commit_version"] = self.commit_version
        if self.attrs:
            d["attrs"] = self.attrs
        if self.run:
            d["run"] = self.run
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.component!r}, "
            f"{self.start:.3f}..{self.end:.3f}, rid={self.request_id}, "
            f"txn={self.txn_id}, v={self.commit_version})"
        )


class Tracer:
    """Bounded ring-buffer collector of :class:`Span` records.

    Disabled by default; when disabled every hook is a single attribute
    check and nothing is allocated.  See the module docstring for the
    full contract.
    """

    __slots__ = (
        "enabled",
        "sample_rate",
        "capacity",
        "dropped",
        "run_id",
        "_spans",
        "_sampled",
        "_version_links",
        "_marks",
    )

    def __init__(self, capacity: int = 65536, sample_rate: float = 1.0):
        self.enabled = False
        self.sample_rate = sample_rate
        self.capacity = capacity
        self.dropped = 0
        #: current run (cluster build) — see :attr:`Span.run`
        self.run_id = 0
        self._spans: deque = deque()
        #: request ids selected for tracing (per attempt; retries are
        #: aliased in by the load balancer)
        self._sampled: set = set()
        #: commit version -> (txn_id, request_id); registered when a
        #: sampled transaction certifies, consulted by refresh applies
        self._version_links: Dict[int, Tuple[int, int]] = {}
        #: open interval start times, keyed by (request_id, name) —
        #: used when a span's start and end are observed at different
        #: call sites (e.g. LB queueing)
        self._marks: Dict[Tuple[int, str], float] = {}

    # -- lifecycle ---------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def configure(
        self,
        sample_rate: Optional[float] = None,
        capacity: Optional[int] = None,
    ) -> None:
        if sample_rate is not None:
            if not (0.0 <= sample_rate <= 1.0):
                raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
            self.sample_rate = sample_rate
        if capacity is not None:
            if capacity <= 0:
                raise ValueError(f"capacity must be positive, got {capacity}")
            self.capacity = capacity

    def reset(self) -> None:
        """Drop all spans, sampling state and links (keeps knobs)."""
        self.dropped = 0
        self.run_id = 0
        self._spans.clear()
        self._sampled.clear()
        self._version_links.clear()
        self._marks.clear()

    def new_run(self) -> int:
        """Start a new correlation-id namespace (called per cluster build).

        Request ids and commit versions restart from 1 for every cluster,
        so a command that traces several runs must clear the sampling and
        version-link maps between them; spans already in the buffer keep
        their old ``run`` tag and stay exportable.
        """
        self.run_id += 1
        self._sampled.clear()
        self._version_links.clear()
        self._marks.clear()
        return self.run_id

    # -- sampling ----------------------------------------------------------
    def sample(self, request_id: int) -> bool:
        """Decide (deterministically) whether to trace this transaction.

        Called once per client request at submit time.  Uses a
        multiplicative hash of the request id, never the simulation's
        RNG streams, so sampling can't perturb seeded runs.
        """
        if self.sample_rate >= 1.0:
            keep = True
        elif self.sample_rate <= 0.0:
            keep = False
        else:
            keep = (request_id * _HASH_MULT) % _HASH_MOD < self.sample_rate * _HASH_MOD
        if keep:
            self._sampled.add(request_id)
        return keep

    def is_sampled(self, request_id: int) -> bool:
        return request_id in self._sampled

    def alias(self, old_request_id: int, new_request_id: int) -> None:
        """Propagate sampling across a retry's fresh attempt id."""
        if old_request_id in self._sampled:
            self._sampled.add(new_request_id)

    def link_version(self, commit_version: int, txn_id: int, request_id: int) -> None:
        """Register a sampled commit so refresh applies (which only see
        the commit version) can be correlated back to the transaction."""
        self._version_links[commit_version] = (txn_id, request_id)

    def version_sampled(self, commit_version: int) -> bool:
        return commit_version in self._version_links

    # -- recording ---------------------------------------------------------
    def record(
        self,
        name: str,
        component: str,
        start: float,
        end: float,
        request_id: Optional[int] = None,
        txn_id: Optional[int] = None,
        commit_version: Optional[int] = None,
        attrs: Optional[dict] = None,
    ) -> None:
        """Append a span to the ring buffer (oldest dropped when full).

        If ``commit_version`` is linked and txn/request ids are omitted
        they are filled in from the link, so refresh-apply call sites
        only need the version.
        """
        if not self.enabled:
            return
        if commit_version is not None and txn_id is None:
            link = self._version_links.get(commit_version)
            if link is not None:
                txn_id, linked_rid = link
                if request_id is None:
                    request_id = linked_rid
        if len(self._spans) >= self.capacity:
            self._spans.popleft()
            self.dropped += 1
        self._spans.append(
            Span(name, component, start, end, request_id, txn_id,
                 commit_version, attrs, self.run_id)
        )

    def instant(
        self,
        name: str,
        component: str,
        at: float,
        request_id: Optional[int] = None,
        txn_id: Optional[int] = None,
        commit_version: Optional[int] = None,
        attrs: Optional[dict] = None,
    ) -> None:
        """Record a zero-duration span (a point event)."""
        self.record(name, component, at, at, request_id, txn_id, commit_version, attrs)

    def mark(self, request_id: int, name: str, at: float) -> None:
        """Remember an interval's start; paired with :meth:`span_since`."""
        self._marks[(request_id, name)] = at

    def span_since(
        self,
        request_id: int,
        name: str,
        component: str,
        end: float,
        attrs: Optional[dict] = None,
    ) -> None:
        """Close an interval opened by :meth:`mark` (no-op if absent)."""
        start = self._marks.pop((request_id, name), None)
        if start is not None:
            self.record(name, component, start, end, request_id=request_id, attrs=attrs)

    # -- queries -----------------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def spans_for_txn(self, txn_id: int) -> List[Span]:
        """All spans for one transaction, ordered by start time.

        Spans recorded before the txn id existed (client submit, LB
        admission, the version stage) are joined in via the request ids
        observed alongside this txn id.
        """
        rids = {
            s.request_id
            for s in self._spans
            if s.txn_id == txn_id and s.request_id is not None
        }
        out = [
            s
            for s in self._spans
            if s.txn_id == txn_id or (s.request_id is not None and s.request_id in rids)
        ]
        out.sort(key=lambda s: (s.start, s.end))
        return out

    def spans_for_request(self, request_id: int) -> List[Span]:
        out = [s for s in self._spans if s.request_id == request_id]
        out.sort(key=lambda s: (s.start, s.end))
        return out

    def spans_for_version(self, commit_version: int) -> List[Span]:
        out = [s for s in self._spans if s.commit_version == commit_version]
        out.sort(key=lambda s: (s.start, s.end))
        return out

    def critical_path(self, txn_id: int) -> List[Span]:
        """The transaction's latency decomposition: its spans ordered by
        start time with container spans (e.g. ``client.request``) first.

        Each returned span carries its own duration; summing the proxy
        stage spans plus LB queueing reconstructs the end-to-end latency
        the client observed (network hops excepted).
        """
        spans = self.spans_for_txn(txn_id)
        spans.sort(key=lambda s: (s.start, -(s.end - s.start)))
        return spans

    def stage_histograms(self) -> Dict[str, dict]:
        """Per span-name duration summaries: count/total/mean/p50/p99/max."""
        buckets: Dict[str, List[float]] = {}
        for s in self._spans:
            buckets.setdefault(s.name, []).append(s.end - s.start)
        out = {}
        for name, durations in sorted(buckets.items()):
            durations.sort()
            n = len(durations)
            total = sum(durations)
            out[name] = {
                "count": n,
                "total": total,
                "mean": total / n,
                "p50": durations[n // 2],
                "p99": durations[min(n - 1, (n * 99) // 100)],
                "max": durations[-1],
            }
        return out

    def stage_totals(self) -> Dict[str, float]:
        """Summed duration per span name (virtual ms)."""
        totals: Dict[str, float] = {}
        for s in self._spans:
            totals[s.name] = totals.get(s.name, 0.0) + (s.end - s.start)
        return totals

    def stats(self) -> dict:
        """Registry-facing counters."""
        return {
            "enabled": self.enabled,
            "sample_rate": self.sample_rate,
            "spans": len(self._spans),
            "capacity": self.capacity,
            "dropped": self.dropped,
            "sampled_requests": len(self._sampled),
            "linked_versions": len(self._version_links),
        }

    # -- exporters ---------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """Chrome-trace ("Trace Event Format") JSON object.

        Times are exported in microseconds as the format expects; one
        pid per cluster run, one tid per component, with thread/process
        name metadata so the viewer labels lanes
        ``client``/``balancer``/``replica-N``/… per run.
        """
        tids: Dict[Tuple[int, str], int] = {}
        pids = set()
        events = []
        for span in self._spans:
            pid = max(1, span.run)
            pids.add(pid)
            tid = tids.setdefault((pid, span.component), len(tids) + 1)
            args = {}
            if span.request_id is not None:
                args["request_id"] = span.request_id
            if span.txn_id is not None:
                args["txn_id"] = span.txn_id
            if span.commit_version is not None:
                args["commit_version"] = span.commit_version
            if span.attrs:
                args.update(span.attrs)
            duration = span.end - span.start
            event = {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X" if duration > 0 else "i",
                "ts": span.start * 1000.0,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
            if duration > 0:
                event["dur"] = duration * 1000.0
            else:
                event["s"] = "t"
            events.append(event)
        meta = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": component},
            }
            for (pid, component), tid in sorted(tids.items(), key=lambda kv: kv[1])
        ]
        for pid in sorted(pids) or [1]:
            meta.insert(
                0,
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"repro run {pid} (virtual time)"},
                },
            )
        return {
            "traceEvents": meta + events,
            "displayTimeUnit": "ms",
            "otherData": {"dropped_spans": self.dropped, "spans": len(self._spans)},
        }

    def export_chrome(self, path: str) -> int:
        """Write Chrome-trace JSON to ``path``; returns span count."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_trace(), fh)
        return len(self._spans)

    def export_jsonl(self, path: str) -> int:
        """Write one JSON span record per line; returns span count."""
        with open(path, "w", encoding="utf-8") as fh:
            for span in self._spans:
                fh.write(json.dumps(span.to_dict()))
                fh.write("\n")
        return len(self._spans)


def trace_invariant_report(
    spans: Iterable[Span],
    expected_refresh_appliers: int,
    up_to_version: Optional[int] = None,
) -> dict:
    """Check causal trace invariants over a span set.

    For every commit version observed in the spans (optionally limited
    to versions ``<= up_to_version``, e.g. the slowest replica's
    ``v_local`` so in-flight refreshes don't count as violations):

    * exactly one certification span (``certifier.certify`` or
      ``certifier.certify_partitioned``) produced that version, and
    * exactly ``expected_refresh_appliers`` ``refresh.apply`` spans
      exist — one per live non-origin replica — with no replica
      applying the same version twice.

    Returns ``{"versions": n, "violations": [...]}:`` an empty
    ``violations`` list means the trace is causally consistent.
    """
    certify_names = {"certifier.certify", "certifier.certify_partitioned"}
    certs: Dict[Tuple[int, int], int] = {}
    applies: Dict[Tuple[int, int], List[str]] = {}
    for span in spans:
        v = span.commit_version
        if v is None:
            continue
        key = (getattr(span, "run", 0), v)
        if span.name in certify_names:
            certs[key] = certs.get(key, 0) + 1
        elif span.name == "refresh.apply":
            applies.setdefault(key, []).append(span.component)
    versions = set(certs) | set(applies)
    if up_to_version is not None:
        versions = {key for key in versions if key[1] <= up_to_version}
    violations = []
    for key in sorted(versions):
        _run, v = key
        n_cert = certs.get(key, 0)
        if n_cert != 1:
            violations.append(f"version {v}: {n_cert} certification spans (expected 1)")
        appliers = applies.get(key, [])
        if len(set(appliers)) != len(appliers):
            violations.append(f"version {v}: duplicate refresh.apply on a replica: {appliers}")
        if len(appliers) != expected_refresh_appliers:
            violations.append(
                f"version {v}: {len(appliers)} refresh.apply spans "
                f"(expected {expected_refresh_appliers}): {sorted(appliers)}"
            )
    return {"versions": len(versions), "violations": violations}


#: Module-level tracer singleton — mirror of :data:`~repro.metrics.profiler.PROFILER`.
TRACER = Tracer()
