"""Lightweight always-available wall-clock profiler.

Virtual-time metrics (the :mod:`collector`) answer "how fast is the
*modelled* system"; this module answers "how fast is the *simulator*" —
the binding constraint on how large a cluster or how long a trace an
experiment can afford.  It provides named counters and ``perf_counter``
section timers behind a single global switch:

* **off** (the default): :meth:`Profiler.section` returns a shared no-op
  context manager and :meth:`Profiler.count` returns immediately — the
  instrumented code pays one attribute check and no clock reads, so the
  profiler can stay wired into hot paths permanently;
* **on** (``--profile`` on the CLI and bench runner): sections accumulate
  wall-clock seconds and call counts, and :meth:`Profiler.report` renders
  an events/sec summary plus a top-sections table.

All times here are *real* seconds, never virtual milliseconds.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional

__all__ = ["Profiler", "PROFILER"]


class _NullSection:
    """Shared do-nothing context manager returned while profiling is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SECTION = _NullSection()


class _Section:
    """A live section timer: accumulates into its profiler on exit."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "Profiler", name: str):
        self._profiler = profiler
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Section":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        elapsed = perf_counter() - self._start
        sections = self._profiler.sections
        total, calls = sections.get(self._name, (0.0, 0))
        sections[self._name] = (total + elapsed, calls + 1)
        return False


class Profiler:
    """Named counters plus wall-clock section timers, off by default."""

    __slots__ = ("enabled", "counters", "sections")

    def __init__(self):
        self.enabled = False
        #: name -> cumulative count
        self.counters: dict[str, int] = {}
        #: name -> (cumulative wall seconds, number of entries)
        self.sections: dict[str, tuple[float, int]] = {}

    # -- switching ---------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Clear all accumulated counters and section timings."""
        self.counters.clear()
        self.sections.clear()

    # -- instrumentation ---------------------------------------------------
    def section(self, name: str):
        """Context manager timing one named section (no-op while off)."""
        if not self.enabled:
            return _NULL_SECTION
        return _Section(self, name)

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to a named counter (no-op while off)."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + n

    # -- reporting ---------------------------------------------------------
    def report(
        self,
        events: Optional[int] = None,
        wall_s: Optional[float] = None,
        top: int = 10,
    ) -> str:
        """Render the accumulated profile.

        ``events``/``wall_s`` add a kernel events-per-second headline (the
        simulator's core speed metric); sections are listed by cumulative
        wall time, descending, at most ``top`` of them.
        """
        lines = ["-- profile " + "-" * 49]
        if wall_s is None and self.sections:
            wall_s = max(total for total, _ in self.sections.values())
        if events is not None and wall_s:
            lines.append(
                f"   {events:,} kernel events in {wall_s:.2f}s wall "
                f"= {events / wall_s:,.0f} events/s"
            )
        if self.sections:
            ranked = sorted(
                self.sections.items(), key=lambda item: item[1][0], reverse=True
            )
            lines.append(
                f"   {'section':<28} {'total s':>9} {'calls':>9} {'per call':>11}"
            )
            for name, (total, calls) in ranked[:top]:
                per_call = total / calls if calls else 0.0
                lines.append(
                    f"   {name:<28} {total:>9.3f} {calls:>9,} {per_call * 1e6:>9,.1f}us"
                )
            if len(ranked) > top:
                lines.append(f"   ... {len(ranked) - top} more sections")
        for name in sorted(self.counters):
            lines.append(f"   {name:<28} {self.counters[name]:>9,}")
        if len(lines) == 1:
            lines.append("   (no sections or counters recorded)")
        return "\n".join(lines)


#: process-wide profiler instance — hot paths hold a reference to this and
#: pay only the ``enabled`` check while profiling is off
PROFILER = Profiler()
