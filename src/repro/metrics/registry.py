"""Unified metrics registry: one namespace of stable dotted metric names.

Every producer in the system — simulation kernel, storage layer,
certifier (and its shards), load balancer, overload valve, scrubber,
bootstrap coordinator, durability log, tracer — publishes into a single
:class:`MetricsRegistry` owned by the cluster.  Consumers read metrics
by **stable dotted names** (``kernel.events_processed``,
``certifier.shard.0.conflicts``, ``scrub.rounds``, …) instead of
spelunking through per-component ``stats()`` dicts.

The registry is *pull-based*: components register a named provider (a
zero-argument callable returning a nested dict snapshot) once at wiring
time; nothing is recorded on the hot path and an unread registry costs
nothing.  Each provider may carry a ``transform`` that maps its raw
legacy tree onto the canonical naming (e.g. the certifier's ``shards``
sub-dict becomes ``shard`` with per-shard ``aborts`` published as
``conflicts``).  The raw tree stays available — legacy surfaces like
:meth:`repro.core.cluster.ReplicatedDatabase.stats` are thin
compatibility views over the same providers.

See ``docs/OBSERVABILITY.md`` for the full metric-name catalog.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

__all__ = ["MetricsRegistry", "latest_registry"]


class _Provider:
    __slots__ = ("name", "fn", "transform", "canonical")

    def __init__(self, name, fn, transform, canonical):
        self.name = name
        self.fn = fn
        self.transform = transform
        self.canonical = canonical


class MetricsRegistry:
    """A named collection of metric providers with a flat dotted view."""

    def __init__(self):
        self._providers: Dict[str, _Provider] = {}

    # -- registration ------------------------------------------------------
    def register(
        self,
        name: str,
        provider: Callable[[], Optional[dict]],
        transform: Optional[Callable[[dict], dict]] = None,
        canonical: bool = True,
    ) -> None:
        """Register (or replace) the provider behind prefix ``name``.

        ``provider`` returns the component's raw snapshot tree (it may
        return ``None`` for "subsystem not constructed").  ``transform``
        optionally maps the raw tree to the canonical dotted layout;
        ``canonical=False`` keeps the provider out of :meth:`collect`
        (raw-only views used by legacy compatibility surfaces).
        """
        if "." in name:
            raise ValueError(f"provider name must not contain '.': {name!r}")
        self._providers[name] = _Provider(name, provider, transform, canonical)

    def unregister(self, name: str) -> None:
        self._providers.pop(name, None)

    def providers(self) -> List[str]:
        return sorted(self._providers)

    # -- reading -----------------------------------------------------------
    def tree(self, name: str, raw: bool = False):
        """One provider's snapshot — canonical by default, ``raw=True``
        for the untransformed legacy shape."""
        prov = self._providers[name]
        value = prov.fn()
        if raw or prov.transform is None or value is None:
            return value
        return prov.transform(value)

    def snapshot(self, raw: bool = False) -> dict:
        """All providers' trees keyed by provider name."""
        return {name: self.tree(name, raw=raw) for name in sorted(self._providers)}

    def collect(self) -> dict:
        """The flat view: ``{dotted.metric.name: value}`` across every
        canonical provider, sorted by name."""
        flat: dict = {}
        for name in sorted(self._providers):
            prov = self._providers[name]
            if not prov.canonical:
                continue
            tree = self.tree(name)
            if tree is None:
                continue
            _flatten(tree, name, flat)
        return flat

    def names(self) -> List[str]:
        return sorted(self.collect())

    def get(self, dotted: str):
        """Resolve one dotted metric name (raises ``KeyError`` if absent)."""
        first, _, rest = dotted.partition(".")
        prov = self._providers.get(first)
        if prov is None or not prov.canonical:
            raise KeyError(dotted)
        node = self.tree(first)
        if not rest:
            return node
        for segment in rest.split("."):
            if not isinstance(node, dict):
                raise KeyError(dotted)
            if segment in node:
                node = node[segment]
            elif segment.lstrip("-").isdigit() and int(segment) in node:
                node = node[int(segment)]
            else:
                raise KeyError(dotted)
        return node


def _flatten(tree: dict, prefix: str, out: dict) -> None:
    for key, value in tree.items():
        dotted = f"{prefix}.{key}"
        if isinstance(value, dict):
            _flatten(value, dotted, out)
        else:
            out[dotted] = value


#: The registry of the most recently constructed cluster — a convenience
#: for CLI-level reporting (``--stats``) where the cluster object itself
#: is buried inside an experiment helper.  Library code should prefer
#: ``cluster.metrics``.
_LATEST: Optional[MetricsRegistry] = None


def _set_latest(registry: MetricsRegistry) -> None:
    global _LATEST
    _LATEST = registry


def latest_registry() -> Optional[MetricsRegistry]:
    """The most recently constructed cluster's registry (None before any)."""
    return _LATEST
