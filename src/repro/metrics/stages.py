"""Transaction stage timings.

The paper breaks transaction delay into stages (Section V, Metrics):

* read-only transactions: **version** (synchronization start delay),
  **queries**, **commit**;
* update transactions additionally: **certify** (round trip to the
  certifier), **sync** (waiting for previous commits in the global order),
  and — under EAGER only — **global** (the global commit delay).

:class:`StageTimings` is the per-transaction record; it travels back to the
client inside the response and feeds the Figure 4 latency-breakdown bench.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["STAGE_NAMES", "StageTimings"]

#: Stage order used in reports, matching Figure 4's legend.
STAGE_NAMES = ("version", "queries", "certify", "sync", "commit", "global")


@dataclass
class StageTimings:
    """Per-transaction latency breakdown, all in milliseconds."""

    version: float = 0.0  # synchronization start delay (lazy/session configs)
    queries: float = 0.0  # executing the transaction's SQL statements
    certify: float = 0.0  # querying the certifier
    sync: float = 0.0     # committing prior txns per the global order
    commit: float = 0.0   # local DBMS commit
    global_: float = 0.0  # EAGER global commit delay
    routing: float = 0.0  # network + balancer time (not a paper stage)

    @property
    def total(self) -> float:
        """Sum of all stages (excludes client think time)."""
        return (
            self.version
            + self.queries
            + self.certify
            + self.sync
            + self.commit
            + self.global_
            + self.routing
        )

    @property
    def synchronization_delay(self) -> float:
        """The paper's Figure 6 metric: the synchronization *start* delay for
        the lazy configurations and the *global commit* delay for EAGER."""
        return self.version + self.global_

    def as_dict(self) -> dict[str, float]:
        """Stage values keyed by the paper's stage names."""
        return {
            "version": self.version,
            "queries": self.queries,
            "certify": self.certify,
            "sync": self.sync,
            "commit": self.commit,
            "global": self.global_,
        }

    def add(self, other: "StageTimings") -> None:
        """Accumulate another transaction's stages into this one."""
        self.version += other.version
        self.queries += other.queries
        self.certify += other.certify
        self.sync += other.sync
        self.commit += other.commit
        self.global_ += other.global_
        self.routing += other.routing

    def scaled(self, factor: float) -> "StageTimings":
        """A copy with every stage multiplied by ``factor`` (for averaging)."""
        return StageTimings(
            version=self.version * factor,
            queries=self.queries * factor,
            certify=self.certify * factor,
            sync=self.sync * factor,
            commit=self.commit * factor,
            global_=self.global_ * factor,
            routing=self.routing * factor,
        )
