"""Metrics collection.

The paper reports (Section V): system throughput in committed transactions
per second (TPS); response time from transaction start to commit
acknowledgment (ms); the per-stage latency breakdown; and the
synchronization delay (the synchronization *start* delay for the lazy
configurations, the *global commit* delay for EAGER).

:class:`MetricsCollector` accumulates those from the client side, honouring a
warm-up interval exactly like the paper's runs (measurements before
``measure_start`` are discarded).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from .stages import StageTimings

__all__ = ["TxnSample", "MetricsCollector", "MetricsSummary"]


@dataclass(frozen=True)
class TxnSample:
    """One measured client transaction."""

    template: str
    is_update: bool
    committed: bool
    submit_time: float
    ack_time: float
    stages: Optional[StageTimings]

    @property
    def response_time(self) -> float:
        return self.ack_time - self.submit_time


@dataclass(frozen=True)
class MetricsSummary:
    """Aggregated results of one measurement interval."""

    duration_ms: float
    committed: int
    aborted: int
    tps: float
    mean_response_ms: float
    p50_response_ms: float
    p95_response_ms: float
    p99_response_ms: float
    mean_sync_delay_ms: float
    read_only_breakdown: StageTimings
    update_breakdown: StageTimings
    read_only_count: int
    update_count: int

    @property
    def abort_rate(self) -> float:
        total = self.committed + self.aborted
        return self.aborted / total if total else 0.0


class MetricsCollector:
    """Client-side accumulator with a warm-up window."""

    def __init__(self, measure_start: float = 0.0, measure_end: float = math.inf):
        if measure_end <= measure_start:
            raise ValueError("measure_end must be after measure_start")
        self.measure_start = measure_start
        self.measure_end = measure_end
        self.samples: list[TxnSample] = []
        self.discarded = 0

    def record(self, sample: TxnSample) -> None:
        """Record a finished transaction; warm-up/cool-down samples are
        discarded (a transaction counts if it *completes* in the window)."""
        if sample.ack_time < self.measure_start or sample.ack_time > self.measure_end:
            self.discarded += 1
            return
        self.samples.append(sample)

    def timeline(self, bucket_ms: float = 1_000.0) -> list[tuple[float, float]]:
        """Throughput over time: ``(bucket_start_ms, tps)`` per bucket.

        Buckets span the measurement window (or the observed ack range when
        the window is open-ended); committed transactions are bucketed by
        acknowledgment time.  Useful for spotting warm-up transients and
        fault-injection dips.
        """
        if bucket_ms <= 0:
            raise ValueError("bucket_ms must be positive")
        committed = [s for s in self.samples if s.committed]
        if not committed:
            return []
        start = self.measure_start
        end = self.measure_end
        if math.isinf(end):
            end = max(s.ack_time for s in committed)
        buckets = max(1, math.ceil((end - start) / bucket_ms))
        counts = [0] * buckets
        for sample in committed:
            index = min(buckets - 1, int((sample.ack_time - start) // bucket_ms))
            counts[index] += 1
        return [
            (start + i * bucket_ms, count / (bucket_ms / 1000.0))
            for i, count in enumerate(counts)
        ]

    # -- aggregation ---------------------------------------------------------
    def summary(self, duration_ms: Optional[float] = None) -> MetricsSummary:
        """Aggregate the recorded samples.

        ``duration_ms`` defaults to the configured measurement window; pass
        it explicitly when the run was stopped early.
        """
        if duration_ms is None:
            if math.isinf(self.measure_end):
                last = max((s.ack_time for s in self.samples), default=self.measure_start)
                duration_ms = max(last - self.measure_start, 1e-9)
            else:
                duration_ms = self.measure_end - self.measure_start

        committed = [s for s in self.samples if s.committed]
        aborted = [s for s in self.samples if not s.committed]
        response_times = sorted(s.response_time for s in committed)
        mean_response = _mean(response_times)
        sync_delays = [
            s.stages.synchronization_delay for s in committed if s.stages is not None
        ]

        read_only = [s for s in committed if not s.is_update and s.stages is not None]
        updates = [s for s in committed if s.is_update and s.stages is not None]

        return MetricsSummary(
            duration_ms=duration_ms,
            committed=len(committed),
            aborted=len(aborted),
            tps=len(committed) / (duration_ms / 1000.0),
            mean_response_ms=mean_response,
            p50_response_ms=_percentile(response_times, 0.50),
            p95_response_ms=_percentile(response_times, 0.95),
            p99_response_ms=_percentile(response_times, 0.99),
            mean_sync_delay_ms=_mean(sync_delays),
            read_only_breakdown=_mean_stages([s.stages for s in read_only]),
            update_breakdown=_mean_stages([s.stages for s in updates]),
            read_only_count=len(read_only),
            update_count=len(updates),
        )


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, math.ceil(q * len(sorted_values)) - 1))
    return sorted_values[index]


def _mean_stages(stage_list: list[StageTimings]) -> StageTimings:
    total = StageTimings()
    for stages in stage_list:
        total.add(stages)
    if not stage_list:
        return total
    return total.scaled(1.0 / len(stage_list))
