"""Pluggable consistency policies — the protocol's decision points as a
strategy layer.

Historically every consistency scheme was a :class:`ConsistencyLevel` enum
branch scattered across three middleware layers: start-version tagging in
the load balancer, commit-acknowledgment rules in the replica proxy, and
global-commit tracking in the certifier.  A :class:`ConsistencyPolicy`
gathers those decisions behind one interface so a new scheme is a single
class, not a cross-layer edit:

* **load balancer** — :meth:`~ConsistencyPolicy.start_version` computes the
  consistency tag (the minimum ``V_local`` a replica must reach before the
  transaction starts) and :meth:`~ConsistencyPolicy.observe_response`
  maintains the version tracker's ``V_system``/per-table/per-session state;
* **replica proxy** — :attr:`~ConsistencyPolicy.waits_for_global_commit`
  gates the EAGER-style *global* stage and
  :meth:`~ConsistencyPolicy.commit_ack_flush` prices the synchronous
  log-flush a commit acknowledgment must pay (0 for the lazy schemes);
* **certifier** — :attr:`~ConsistencyPolicy.tracks_global_commit` turns on
  the per-commit applied-replica counters behind global-commit notices.

Policies register under a short name (``"sc-fine"``, ``"bounded"``) in a
process-wide registry; :func:`resolve_policy` accepts a registered name
(optionally parameterized, ``"bounded:3"``), a legacy
:class:`ConsistencyLevel` member, or a ready policy instance, so all
existing enum-based call sites keep working unchanged.

The module ships the paper's four configurations (EAGER, SC-COARSE,
SC-FINE, SESSION), the BASELINE and RELAXED extensions, and
:class:`BoundedStalenessPolicy` — ``bounded:k`` bounded staleness, written
purely against this interface as the extensibility proof: a client may read
a snapshot at most ``k`` versions behind ``V_system``; ``k = 0``
degenerates to SC-COARSE.
"""

from __future__ import annotations

import abc
from typing import Callable, Iterable, Optional, TYPE_CHECKING

from .consistency import ConsistencyLevel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..middleware.messages import TxnResponse
    from ..middleware.perfmodel import ReplicaPerformance
    from .versions import VersionTracker

__all__ = [
    "ConsistencyPolicy",
    "EagerPolicy",
    "ScCoarsePolicy",
    "ScFinePolicy",
    "SessionPolicy",
    "BaselinePolicy",
    "RelaxedPolicy",
    "BoundedStalenessPolicy",
    "register_policy",
    "available_policies",
    "resolve_policy",
]


class ConsistencyPolicy(abc.ABC):
    """One consistency scheme's protocol decisions, all in one place.

    Subclass and override the decision hooks, then
    :func:`register_policy` the class under a short name to make it
    available to ``ClusterConfig(level=...)`` and ``repro audit --level``.
    The base class defaults describe a lazy scheme with no global-commit
    round, which is the common case.
    """

    #: registry key, e.g. ``"sc-coarse"``
    name: str = ""
    #: report label matching the paper's legends, e.g. ``"SC-COARSE"``
    label: str = ""
    #: the legacy enum member this policy implements, when one exists
    level: Optional[ConsistencyLevel] = None
    #: True for schemes that guarantee strong consistency
    is_strong: bool = False
    #: True when update propagation is lazy (commit acks do not wait for
    #: remote replicas)
    is_lazy: bool = True
    #: True for schemes that may delay transaction start
    uses_start_delay: bool = False

    @property
    def spec(self) -> str:
        """Canonical ``--level`` spelling that reconstructs this policy."""
        return self.name

    # -- load balancer decisions -------------------------------------------
    @abc.abstractmethod
    def start_version(
        self,
        tracker: "VersionTracker",
        table_set: Optional[Iterable[str]] = None,
        session_id: Optional[str] = None,
    ) -> int:
        """Minimum ``V_local`` the receiving replica must reach before the
        transaction may start (the consistency tag)."""

    def start_versions(
        self,
        tracker: "VersionTracker",
        table_set: Optional[Iterable[str]] = None,
        session_id: Optional[str] = None,
    ) -> dict:
        """Per-partition start-version vector (partitioned accounting).

        For each partition the transaction's table-set touches, the
        minimum version of *that partition* the replica must have applied.
        The default derivation is sound for every shipped policy: each
        component is the scalar :meth:`start_version` tag capped at the
        partition's own latest acknowledged commit — a replica that has
        applied partition ``p`` up to that point exposes everything the
        scalar tag could require *of partition p*.

        The dispatch path still tags requests with the scalar (the
        replicas' start-wait clock is the contiguous watermark, against
        which the scalar tag remains exact); this vector feeds stats,
        tests and partition-aware admission.  Without a partition map the
        vector collapses to ``{0: scalar}``.
        """
        scalar = self.start_version(
            tracker, table_set=table_set, session_id=session_id
        )
        pmap = getattr(tracker, "partition_map", None)
        if pmap is None:
            return {0: scalar}
        if table_set is None:
            partitions = range(pmap.num_partitions)
        else:
            partitions = pmap.partitions_for(table_set)
        return {
            p: min(scalar, tracker.partition_version(p)) for p in partitions
        }

    def observe_response(self, tracker: "VersionTracker", response: "TxnResponse") -> None:
        """Account for a replica's transaction acknowledgment.

        The default maintains the full version soft state (``V_system``,
        per-table, per-session) for committed transactions, which every
        shipped scheme relies on; a policy that needs different bookkeeping
        overrides this.
        """
        if not response.committed:
            return
        tracker.observe_commit(
            commit_version=response.commit_version,
            updated_tables=response.updated_tables,
            session_id=response.session_id,
            replica_version=response.replica_version,
        )

    # -- replica proxy decisions -------------------------------------------
    #: wait for the certifier's global-commit notice before acknowledging
    #: the client (the *global* stage)
    waits_for_global_commit: bool = False

    def commit_ack_flush(self, perf: "ReplicaPerformance", writeset_size: int) -> float:
        """Log-flush time (ms) a commit acknowledgment must serialize
        through before reporting ``CommitApplied``; 0 means report
        immediately (lazy schemes keep durability at the certifier)."""
        return 0.0

    # -- certifier decisions ------------------------------------------------
    #: maintain per-commit applied-replica counters and emit
    #: global-commit notices once every replica has applied the commit
    tracks_global_commit: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.spec!r}>"


class EagerPolicy(ConsistencyPolicy):
    """Eager strong consistency: acknowledge an update only after every
    replica committed it (global commit round + synchronous log flush)."""

    name = "eager"
    label = "EAGER"
    level = ConsistencyLevel.EAGER
    is_strong = True
    is_lazy = False
    waits_for_global_commit = True
    tracks_global_commit = True

    def start_version(self, tracker, table_set=None, session_id=None) -> int:
        return 0

    def commit_ack_flush(self, perf, writeset_size) -> float:
        return perf.eager_commit_flush(writeset_size)


class ScCoarsePolicy(ConsistencyPolicy):
    """Lazy coarse-grained strong consistency: delay start until the
    replica reaches the full ``V_system``."""

    name = "sc-coarse"
    label = "SC-COARSE"
    level = ConsistencyLevel.SC_COARSE
    is_strong = True
    uses_start_delay = True

    def start_version(self, tracker, table_set=None, session_id=None) -> int:
        return tracker.v_system


class ScFinePolicy(ConsistencyPolicy):
    """Lazy fine-grained strong consistency: delay start only until the
    highest version among the transaction's table-set (Table I's
    ``V_start``); degrades safely to coarse when the table-set is
    unknown."""

    name = "sc-fine"
    label = "SC-FINE"
    level = ConsistencyLevel.SC_FINE
    is_strong = True
    uses_start_delay = True

    def start_version(self, tracker, table_set=None, session_id=None) -> int:
        if table_set is None:
            return tracker.v_system
        tables = list(table_set)
        if not tables:
            return 0
        return max(tracker.table_version(table) for table in tables)


class SessionPolicy(ConsistencyPolicy):
    """Session consistency: wait only for the session's own last observed
    version."""

    name = "session"
    label = "SESSION"
    level = ConsistencyLevel.SESSION
    uses_start_delay = True

    def start_version(self, tracker, table_set=None, session_id=None) -> int:
        if session_id is None:
            return 0
        return tracker.session_version(session_id)


class BaselinePolicy(ConsistencyPolicy):
    """Plain GSI with no start synchronization — the deliberately weak
    baseline the history checkers exhibit violations against."""

    name = "baseline"
    label = "BASELINE"
    level = ConsistencyLevel.BASELINE

    def start_version(self, tracker, table_set=None, session_id=None) -> int:
        return 0


class RelaxedPolicy(ConsistencyPolicy):
    """The relaxed-currency model (Bernstein et al. [6], Guo et al. [21]):
    a configurable freshness bound of *k* versions behind ``V_system``."""

    name = "relaxed"
    label = "RELAXED"
    level = ConsistencyLevel.RELAXED
    uses_start_delay = True

    def __init__(self, freshness_bound: int = 0):
        self.freshness_bound = freshness_bound

    @property
    def spec(self) -> str:
        return f"relaxed:{self.freshness_bound}"

    def start_version(self, tracker, table_set=None, session_id=None) -> int:
        return max(0, tracker.v_system - max(0, self.freshness_bound))


class BoundedStalenessPolicy(ConsistencyPolicy):
    """``bounded:k`` — bounded staleness, written purely against the
    policy interface (no enum member, no middleware edits).

    A client may read a snapshot at most ``k`` versions behind
    ``V_system``; ``k = 0`` degenerates to SC-COARSE and is therefore
    strongly consistent.
    """

    name = "bounded"
    uses_start_delay = True

    def __init__(self, staleness_bound: int = 0):
        if staleness_bound < 0:
            raise ValueError("staleness bound must be >= 0")
        self.staleness_bound = staleness_bound

    @property
    def label(self) -> str:  # type: ignore[override]
        return f"BOUNDED({self.staleness_bound})"

    @property
    def spec(self) -> str:
        return f"bounded:{self.staleness_bound}"

    @property
    def is_strong(self) -> bool:  # type: ignore[override]
        return self.staleness_bound == 0

    def start_version(self, tracker, table_set=None, session_id=None) -> int:
        return max(0, tracker.v_system - self.staleness_bound)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: name -> factory(arg, freshness_bound) -> ConsistencyPolicy
_REGISTRY: dict[str, Callable[[Optional[str], Optional[int]], ConsistencyPolicy]] = {}


def register_policy(
    name: str,
    factory: Callable[[Optional[str], Optional[int]], ConsistencyPolicy],
) -> None:
    """Register a policy factory under ``name``.

    ``factory(arg, freshness_bound)`` receives the optional ``:arg`` suffix
    of a parameterized spec (``"bounded:3"`` → ``arg="3"``) and the
    deployment's configured freshness bound (for policies that honour it).
    """
    _REGISTRY[name] = factory


def available_policies() -> tuple[str, ...]:
    """Registered policy names, sorted (for CLI choices and error text)."""
    return tuple(sorted(_REGISTRY))


def _int_arg(name: str, arg: str) -> int:
    try:
        return int(arg)
    except ValueError:
        raise ValueError(
            f"policy {name!r} takes an integer parameter, got {arg!r}"
        ) from None


def _stateless(policy: ConsistencyPolicy):
    return lambda arg, freshness_bound: policy


register_policy("eager", _stateless(EagerPolicy()))
register_policy("sc-coarse", _stateless(ScCoarsePolicy()))
register_policy("sc-fine", _stateless(ScFinePolicy()))
register_policy("session", _stateless(SessionPolicy()))
register_policy("baseline", _stateless(BaselinePolicy()))
register_policy(
    "relaxed",
    lambda arg, freshness_bound: RelaxedPolicy(
        _int_arg("relaxed", arg) if arg is not None
        else (freshness_bound if freshness_bound is not None else 0)
    ),
)
register_policy(
    "bounded",
    lambda arg, freshness_bound: BoundedStalenessPolicy(
        _int_arg("bounded", arg) if arg is not None else 0
    ),
)


def resolve_policy(
    spec,
    freshness_bound: Optional[int] = None,
) -> ConsistencyPolicy:
    """Resolve a policy from whatever the caller has.

    ``spec`` may be a :class:`ConsistencyPolicy` instance (returned as-is),
    a legacy :class:`ConsistencyLevel` member, or a registered name with an
    optional ``:parameter`` suffix (``"sc-fine"``, ``"bounded:3"``).
    Raises :class:`ValueError` naming the registered policies for an
    unknown name.
    """
    if isinstance(spec, ConsistencyPolicy):
        return spec
    if isinstance(spec, ConsistencyLevel):
        spec = spec.value
    if not isinstance(spec, str):
        raise TypeError(
            f"cannot resolve a consistency policy from {spec!r}; expected a "
            "ConsistencyPolicy, ConsistencyLevel or registered policy name"
        )
    name, _, arg = spec.partition(":")
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"unknown consistency policy {name!r}; registered policies: "
            + ", ".join(available_policies())
        )
    return factory(arg if arg else None, freshness_bound)
