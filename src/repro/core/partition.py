"""Table-group partitioning of the commit pipeline.

The paper's certifier maintains *one* total order, one decision log and one
refresh stream — the last serial bottleneck of the hot path.  SC-FINE's own
Table I shows most transactions only care about the freshness of *their*
tables, so the keyspace can be split into table-group partitions whose
commit pipelines proceed independently: each partition gets its own
certifier shard (certification index, decision log, refresh stream) and its
own position in the per-partition version vector.

:class:`PartitionMap` is the one source of truth for that split.  It is
deliberately tiny and stateless: a table name maps to a partition id either
through an explicit table-group list (the TPC-W style "by functional area"
split) or through a stable hash (``zlib.crc32``, so the mapping is
independent of dict ordering, process hash seeds and run seeds).  Every
layer — certifier, proxies, load balancer, standby — shares one instance,
so "which shard owns table ``t``" has exactly one answer everywhere.

The single-partition map (``num_partitions=1``) is *trivial*: callers check
:attr:`PartitionMap.is_trivial` and keep the legacy scalar pipeline, which
is what makes the default configuration trace-identical to the
pre-partitioning code.
"""

from __future__ import annotations

import zlib
from typing import Iterable, Optional, Sequence

__all__ = ["PartitionMap"]


class PartitionMap:
    """Stable table → partition mapping shared by every pipeline layer."""

    def __init__(
        self,
        num_partitions: int,
        table_groups: Optional[Sequence[Sequence[str]]] = None,
    ):
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions
        self._explicit: dict[str, int] = {}
        if table_groups is not None:
            if len(table_groups) > num_partitions:
                raise ValueError(
                    f"{len(table_groups)} table groups but only "
                    f"{num_partitions} partitions"
                )
            for partition, group in enumerate(table_groups):
                for table in group:
                    if table in self._explicit:
                        raise ValueError(
                            f"table {table!r} appears in more than one group"
                        )
                    self._explicit[table] = partition
        self.table_groups = (
            tuple(tuple(group) for group in table_groups)
            if table_groups is not None
            else None
        )

    # -- mapping -------------------------------------------------------------
    @property
    def is_trivial(self) -> bool:
        """True for the single-partition map (the legacy scalar pipeline)."""
        return self.num_partitions == 1

    def partition_of(self, table: str) -> int:
        """The partition id owning ``table``.

        Explicitly grouped tables map to their group; everything else maps
        through a stable hash so two processes (or two runs) always agree.
        """
        if self.num_partitions == 1:
            return 0
        explicit = self._explicit.get(table)
        if explicit is not None:
            return explicit
        return zlib.crc32(table.encode("utf-8")) % self.num_partitions

    def partitions_for(self, tables: Iterable[str]) -> tuple[int, ...]:
        """Sorted distinct partition ids touched by ``tables`` — the
        *canonical shard order* in which a cross-partition transaction
        acquires its shards (total order on shard acquisition = no
        deadlocks)."""
        return tuple(sorted({self.partition_of(table) for table in tables}))

    def split_slots(self, slots: Iterable[tuple[str, object]]) -> dict[int, set]:
        """Group writeset slots ``(table, key)`` by owning partition."""
        grouped: dict[int, set] = {}
        for slot in slots:
            grouped.setdefault(self.partition_of(slot[0]), set()).add(slot)
        return grouped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PartitionMap n={self.num_partitions} "
            f"explicit={sorted(self._explicit) or None}>"
        )
