"""Synchronous client session facade.

A :class:`SyncSession` lets ordinary Python code use the replicated database
one transaction at a time: ``execute()`` submits a request through the load
balancer and advances the simulation until the response arrives.  The
session identifier is what the SESSION consistency level keys its version
map on, so two sessions model two independent clients — including the
paper's hidden-channel scenario (see ``examples/hidden_channel.py``).
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, TYPE_CHECKING

from ..middleware.messages import ClientRequest, ClientResponse, next_request_id
from ..storage.errors import TransactionAborted

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cluster import ReplicatedDatabase

__all__ = ["SyncSession"]


class SyncSession:
    """One client session driving the simulation synchronously."""

    def __init__(self, cluster: "ReplicatedDatabase", session_id: str):
        self.cluster = cluster
        self.session_id = session_id
        self._endpoint = f"sync-{session_id}"
        self._mailbox = cluster.network.register(self._endpoint)
        self.last_response: Optional[ClientResponse] = None

    def execute(
        self,
        template: str,
        params: Optional[Mapping[str, Any]] = None,
        limit_ms: float = 600_000.0,
    ) -> ClientResponse:
        """Run one transaction and return the full response.

        Raises :class:`KeyError` for an unregistered template and
        :class:`~repro.storage.errors.TransactionAborted` when the
        transaction aborts (certification conflict, early certification or
        replica failure).
        """
        if template not in self.cluster.templates:
            raise KeyError(f"unknown transaction template {template!r}")
        request = ClientRequest(
            request_id=next_request_id(),
            template=template,
            params=dict(params or {}),
            session_id=self.session_id,
            reply_to=self._endpoint,
            submit_time=self.cluster.env.now,
        )
        self.cluster.network.send(self._endpoint, "lb", request)
        event = self._mailbox.receive()
        response: ClientResponse = self.cluster.env.run_until_event(
            event, limit=self.cluster.env.now + limit_ms
        )
        self.last_response = response
        if not response.committed:
            raise TransactionAborted(response.abort_reason or "aborted")
        return response

    def try_execute(
        self,
        template: str,
        params: Optional[Mapping[str, Any]] = None,
        limit_ms: float = 600_000.0,
    ) -> ClientResponse:
        """Like :meth:`execute` but returns the response instead of raising
        on abort."""
        try:
            return self.execute(template, params, limit_ms)
        except TransactionAborted:
            assert self.last_response is not None
            return self.last_response

    def result(
        self, template: str, params: Optional[Mapping[str, Any]] = None
    ) -> Any:
        """Run a transaction and return just the template body's value."""
        return self.execute(template, params).result
