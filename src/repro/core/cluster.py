"""The replicated database system — public entry point of the library.

:class:`ReplicatedDatabase` wires the full prototype of Figure 2 together on
the simulation substrate: N replicas (storage engine + proxy + CPU model), a
certifier, a load balancer, the network fabric, and the configured
consistency level.  Two ways to drive it:

* **interactively** via :meth:`open_session` — a synchronous facade that
  submits one transaction at a time and advances virtual time until the
  response arrives (used by the examples and many tests);
* **under load** via :meth:`add_clients` + :meth:`run` — closed-loop clients
  measured by a :class:`~repro.metrics.collector.MetricsCollector` (used by
  the benchmark harness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..histories.records import RunHistory
from ..metrics.collector import MetricsCollector
from ..metrics.registry import MetricsRegistry, _set_latest
from ..metrics.tracing import TRACER
from ..middleware.bootstrap import BootstrapCoordinator, BootstrapSettings
from ..middleware.certifier import Certifier
from ..middleware.durability import DecisionLog
from ..middleware.heartbeat import HeartbeatSettings
from ..middleware.loadbalancer import LoadBalancer
from ..middleware.overload import OverloadSettings
from ..middleware.perfmodel import (
    CertifierPerformance,
    PerformanceParams,
    ReplicaPerformance,
    draw_speed_factors,
)
from ..middleware.proxy import ReplicaProxy
from ..middleware.scrubber import Scrubber, ScrubSettings
from ..middleware.standby import CertifierStandby
from ..sim.kernel import Environment
from ..sim.network import LatencyModel, Network
from ..sim.rng import RngRegistry
from ..storage import sql as _sql
from ..storage.database import Database
from ..storage.digest import DigestTracker
from ..storage.engine import StorageEngine
from ..workloads.base import Workload
from ..workloads.clients import ClientPool
from .consistency import ConsistencyLevel
from .partition import PartitionMap
from .policy import ConsistencyPolicy, resolve_policy
from .session import SyncSession

__all__ = ["ClusterConfig", "ReplicatedDatabase"]


@dataclass(frozen=True)
class ClusterConfig:
    """Configuration of one replicated-database deployment."""

    num_replicas: int = 3
    #: a ConsistencyLevel member, a registered policy spec ("sc-fine",
    #: "bounded:3"), or a ready ConsistencyPolicy instance
    level: "ConsistencyLevel | str | ConsistencyPolicy" = ConsistencyLevel.SC_COARSE
    seed: int = 0
    #: override the workload's performance model
    params: Optional[PerformanceParams] = None
    latency: LatencyModel = field(default_factory=LatencyModel)
    record_history: bool = True
    #: statement-side early-certification pre-check against committed rows
    precheck_committed: bool = True
    #: the early-certification mechanism as a whole (Section IV); the
    #: ablation bench disables it
    early_certification: bool = True
    #: optional file sink for the certifier's durable decision log
    log_path: Optional[str] = None
    #: serializable certification: validate readsets at the certifier
    #: (turns GSI into one-copy serializability at the cost of aborts)
    certify_reads: bool = False
    #: staleness allowance, in versions, for the RELAXED level
    freshness_bound: int = 10
    #: load balancer routing policy: least-active (the paper's), round-robin
    #: or random
    routing: str = "least-active"
    #: periodic MVCC garbage collection at each replica (None = off)
    vacuum_interval_ms: Optional[float] = None
    #: conflict detection at the certifier: "index" (last-writer version
    #: index, O(|writeset|) per certification — the default) or "scan" (the
    #: reference linear window scan, kept for differential testing); both
    #: produce byte-identical decisions
    certification_mode: str = "index"
    #: drain maximal runs of consecutive pending refresh versions into one
    #: engine apply pass (group refresh) instead of one CPU round-trip per
    #: version; off by default to keep the per-version timing model (and
    #: the golden equivalence runs) unchanged
    batch_refresh_apply: bool = False
    #: longest run of versions one batched apply pass may drain
    refresh_batch_limit: int = 32
    # -- partitioned certification (see docs/PROTOCOL.md) ------------------
    #: number of table-group certifier shards; 1 (the default) keeps the
    #: single monolithic certification pipeline byte-identical
    num_partitions: int = 1
    #: explicit table→partition assignment as a tuple of table tuples
    #: (group i → partition i); unlisted tables hash onto a partition
    partition_table_groups: Optional[tuple] = None
    #: purge a departed replica's pinned replication-horizon entry after
    #: this grace period (None = pin forever, the legacy behaviour)
    departed_grace_ms: Optional[float] = None
    # -- self-healing (all off by default; see docs/PROTOCOL.md) -----------
    #: heartbeat period for failure detection (None = no heartbeats: faults
    #: are only visible through explicit injector calls, as before)
    heartbeat_interval_ms: Optional[float] = None
    #: consecutive missed heartbeats before a component is suspected
    suspicion_threshold: int = 3
    #: per-request deadline at the load balancer (None = wait forever);
    #: timed-out reads are re-routed, timed-out updates fate-resolved
    request_deadline_ms: Optional[float] = None
    #: bound on a proxy's certify/global wait (None = wait forever)
    certify_timeout_ms: Optional[float] = None
    #: run a warm standby certifier with semi-synchronous log shipping and
    #: majority-vote automatic promotion
    standby_certifier: bool = False
    #: dispatch attempts per request before the client sees a failure
    max_attempts: int = 3
    # -- overload protection (all off by default; see docs/TUNING.md) ------
    #: per-replica cap on concurrently dispatched transactions (None = no
    #: admission control: every request dispatches immediately, as before)
    mpl_cap: Optional[int] = None
    #: bound of each replica's admission queue (used only with ``mpl_cap``)
    admission_queue_depth: int = 64
    #: shed queued requests that cannot start within this budget of their
    #: submission (None = no deadline-aware shedding)
    shed_deadline_ms: Optional[float] = None
    #: retry-after hint carried by ``Overloaded`` fast-rejects
    retry_after_hint_ms: float = 10.0
    #: bound on the certifier's inbound queue; beyond it certifications are
    #: refused with backpressure (None = unbounded, as before)
    certifier_queue_bound: Optional[int] = None
    #: degradation-valve policy spec served to degradable reads while the
    #: balancer is overloaded (e.g. "session" or "bounded:8"; None = off)
    degradation_policy: Optional[str] = None
    #: total admission-queue depth at which the valve opens / closes
    valve_high: int = 16
    valve_low: int = 4
    # -- anti-entropy (all off by default; see docs/PROTOCOL.md) ------------
    #: period between scrub rounds (None = no scrubber, no digest oracle —
    #: the whole anti-entropy subsystem stays unconstructed)
    scrub_interval_ms: Optional[float] = None
    #: deep scrubs rescan every visible row (catches in-place bit rot);
    #: light scrubs answer from the incremental digests (apply bugs only)
    scrub_deep: bool = True
    #: how long a scrub round collects digest replies before evaluating
    scrub_reply_timeout_ms: float = 30.0
    #: drive peer row-sync repair automatically (False = quarantine only)
    scrub_auto_repair: bool = True
    #: seeded network delivery faults (0.0 = off, no random draws)
    net_duplicate_prob: float = 0.0
    net_reorder_prob: float = 0.0
    # -- replica lifecycle (off by default; see docs/PROTOCOL.md) -----------
    #: run the bootstrap coordinator: fresh/stale replicas are brought to
    #: ``live`` by checkpoint transfer + log replay under full client load
    #: (False = the subsystem stays unconstructed, as before)
    bootstrap_enabled: bool = False
    #: catching-up → live threshold, in versions behind ``V_commit``
    bootstrap_live_lag: int = 4
    #: poll period of the bootstrap state machine (ms)
    bootstrap_retry_ms: float = 25.0
    #: checkpoint transfer retry timeout (ms)
    bootstrap_checkpoint_timeout_ms: float = 200.0
    # -- tracing (off by default; see docs/OBSERVABILITY.md) ----------------
    #: enable the module-level TRACER when this cluster is constructed.
    #: Tracing is record-only — it never schedules events or draws RNG, so
    #: even enabled it cannot change virtual-time behaviour; off (the
    #: default) the hot paths do a single attribute check and allocate
    #: nothing.
    trace_enabled: bool = False
    #: fraction of transactions traced (deterministic hash sampling over
    #: request ids — no RNG stream is consumed)
    trace_sample_rate: float = 1.0
    #: span ring-buffer capacity (oldest spans dropped beyond it)
    trace_buffer: int = 65536

    def __post_init__(self):
        if self.num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        if self.heartbeat_interval_ms is not None and self.heartbeat_interval_ms <= 0:
            raise ValueError("heartbeat_interval_ms must be positive")
        if self.request_deadline_ms is not None and self.request_deadline_ms <= 0:
            raise ValueError("request_deadline_ms must be positive")
        if self.certify_timeout_ms is not None and self.certify_timeout_ms <= 0:
            raise ValueError("certify_timeout_ms must be positive")
        if self.certification_mode not in ("index", "scan"):
            raise ValueError(
                "certification_mode must be 'index' or 'scan', "
                f"got {self.certification_mode!r}"
            )
        if self.refresh_batch_limit < 1:
            raise ValueError("refresh_batch_limit must be >= 1")
        # Fail fast on an invalid partition layout (count/groups).
        PartitionMap(self.num_partitions, table_groups=self.partition_table_groups)
        if self.routing == "partition-affinity" and self.num_partitions < 2:
            raise ValueError("partition-affinity routing requires num_partitions > 1")
        if self.departed_grace_ms is not None and self.departed_grace_ms <= 0:
            raise ValueError("departed_grace_ms must be positive")
        if self.mpl_cap is not None and self.mpl_cap < 1:
            raise ValueError("mpl_cap must be >= 1")
        if self.admission_queue_depth < 0:
            raise ValueError("admission_queue_depth must be >= 0")
        if self.shed_deadline_ms is not None and self.shed_deadline_ms <= 0:
            raise ValueError("shed_deadline_ms must be positive")
        if self.certifier_queue_bound is not None and self.certifier_queue_bound < 1:
            raise ValueError("certifier_queue_bound must be >= 1")
        if self.shed_deadline_ms is not None and self.mpl_cap is None:
            raise ValueError("shed_deadline_ms requires mpl_cap (admission control)")
        if self.degradation_policy is not None:
            if self.mpl_cap is None:
                raise ValueError(
                    "degradation_policy requires mpl_cap (the valve keys on "
                    "admission-queue depth)"
                )
            # Fail fast on an unknown/unparseable policy spec.
            resolve_policy(self.degradation_policy, freshness_bound=self.freshness_bound)
        if self.scrub_interval_ms is not None:
            # Fail fast on invalid scrub settings.
            self.scrub_settings
        if self.bootstrap_enabled:
            # Fail fast on invalid bootstrap settings.
            self.bootstrap_settings
        if not 0.0 <= self.net_duplicate_prob <= 1.0:
            raise ValueError("net_duplicate_prob must be in [0, 1]")
        if not 0.0 <= self.net_reorder_prob <= 1.0:
            raise ValueError("net_reorder_prob must be in [0, 1]")
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ValueError("trace_sample_rate must be in [0, 1]")
        if self.trace_buffer < 1:
            raise ValueError("trace_buffer must be >= 1")

    @classmethod
    def self_healing(cls, **overrides) -> "ClusterConfig":
        """A configuration with the whole self-healing stack enabled:
        heartbeats, request deadlines, certify timeouts and a warm standby.
        Any field can still be overridden by keyword."""
        settings = dict(
            heartbeat_interval_ms=20.0,
            suspicion_threshold=3,
            request_deadline_ms=250.0,
            certify_timeout_ms=150.0,
            standby_certifier=True,
        )
        settings.update(overrides)
        return cls(**settings)

    @classmethod
    def overload_protected(cls, **overrides) -> "ClusterConfig":
        """A configuration with the overload-protection stack enabled:
        admission control with bounded queues, deadline-aware shedding and
        certifier backpressure.  Any field can still be overridden by
        keyword (set ``degradation_policy`` to also open the valve)."""
        settings = dict(
            mpl_cap=8,
            admission_queue_depth=32,
            shed_deadline_ms=500.0,
            certifier_queue_bound=64,
        )
        settings.update(overrides)
        return cls(**settings)

    @classmethod
    def anti_entropy(cls, **overrides) -> "ClusterConfig":
        """A configuration with the anti-entropy subsystem enabled: periodic
        deep scrubbing, quarantine on divergence and automatic peer row-sync
        repair.  Any field can still be overridden by keyword."""
        settings = dict(
            scrub_interval_ms=200.0,
            scrub_deep=True,
            scrub_auto_repair=True,
        )
        settings.update(overrides)
        return cls(**settings)

    @classmethod
    def elastic(cls, **overrides) -> "ClusterConfig":
        """A configuration with elastic membership enabled on top of the
        self-healing stack: heartbeats, deadlines, a warm standby, a
        departed-replica grace period (so a long-gone replica stops pinning
        the replication horizon) and the bootstrap coordinator that brings
        fresh or purged replicas back to ``live`` by state transfer.  Any
        field can still be overridden by keyword."""
        settings = dict(
            heartbeat_interval_ms=20.0,
            suspicion_threshold=3,
            request_deadline_ms=250.0,
            certify_timeout_ms=150.0,
            standby_certifier=True,
            departed_grace_ms=400.0,
            bootstrap_enabled=True,
        )
        settings.update(overrides)
        return cls(**settings)

    @property
    def bootstrap_settings(self) -> Optional["BootstrapSettings"]:
        """The resolved bootstrap settings (None when the lifecycle
        subsystem is off)."""
        if not self.bootstrap_enabled:
            return None
        return BootstrapSettings(
            live_lag=self.bootstrap_live_lag,
            retry_ms=self.bootstrap_retry_ms,
            checkpoint_timeout_ms=self.bootstrap_checkpoint_timeout_ms,
        )

    @property
    def scrub_settings(self) -> Optional["ScrubSettings"]:
        """The resolved scrub settings (None when scrubbing is off)."""
        if self.scrub_interval_ms is None:
            return None
        return ScrubSettings(
            interval_ms=self.scrub_interval_ms,
            deep=self.scrub_deep,
            reply_timeout_ms=self.scrub_reply_timeout_ms,
            auto_repair=self.scrub_auto_repair,
        )

    @property
    def partition_map(self) -> Optional[PartitionMap]:
        """The resolved table-group partition map — **None** for the default
        single-partition deployment, so every component takes its unchanged
        legacy code path (trace identity)."""
        if self.num_partitions == 1:
            return None
        return PartitionMap(self.num_partitions, table_groups=self.partition_table_groups)

    @property
    def heartbeat_settings(self) -> Optional[HeartbeatSettings]:
        """The resolved heartbeat settings (None when detection is off)."""
        if self.heartbeat_interval_ms is None:
            return None
        return HeartbeatSettings(self.heartbeat_interval_ms, self.suspicion_threshold)

    @property
    def overload_settings(self) -> Optional[OverloadSettings]:
        """The resolved admission-control settings (None when off)."""
        if self.mpl_cap is None:
            return None
        return OverloadSettings(
            mpl_cap=self.mpl_cap,
            queue_depth=self.admission_queue_depth,
            shed_deadline_ms=self.shed_deadline_ms,
            retry_after_ms=self.retry_after_hint_ms,
            valve_policy=self.degradation_policy,
            valve_high=self.valve_high,
            valve_low=self.valve_low,
        )


def _canonical_certifier(raw: dict) -> dict:
    """Canonical certifier tree: ``shards`` becomes ``shard`` (so dotted
    names read ``certifier.shard.0.conflicts``) and per-shard/global
    ``aborts`` become ``conflicts``."""
    tree = dict(raw)
    tree["conflicts"] = tree.pop("aborts", 0)
    shards = tree.pop("shards", {})
    tree["shard"] = {
        shard_id: {
            ("conflicts" if key == "aborts" else key): value
            for key, value in shard_stats.items()
        }
        for shard_id, shard_stats in shards.items()
    }
    return tree


def _canonical_scrub(raw: Optional[dict]) -> Optional[dict]:
    """Canonical scrub tree: drop the redundant ``scrub_`` prefix so the
    dotted names read ``scrub.rounds`` rather than ``scrub.scrub_rounds``."""
    if raw is None:
        return None
    return {
        ("rounds" if key == "scrub_rounds" else key): value
        for key, value in raw.items()
    }


class ReplicatedDatabase:
    """A fully wired multi-master replicated database."""

    def __init__(self, workload: Workload, config: Optional[ClusterConfig] = None, **overrides):
        if config is None:
            config = ClusterConfig(**overrides)
        elif overrides:
            raise TypeError("pass either a ClusterConfig or keyword overrides, not both")
        self.config = config
        self.workload = workload
        if config.trace_enabled:
            # The tracer is a module-level singleton (like PROFILER): the
            # knob turns it on for this process; callers that interleave
            # traced and untraced clusters disable/reset it themselves.
            TRACER.configure(
                sample_rate=config.trace_sample_rate,
                capacity=config.trace_buffer,
            )
            TRACER.enable()
        if TRACER.enabled:
            # Request ids and commit versions restart per cluster: give
            # this build its own correlation-id namespace so commands
            # that sweep several clusters (repro fig5 --trace) don't
            # cross-link spans between runs.
            TRACER.new_run()
        #: the consistency scheme, resolved once and shared by every layer
        self.policy = resolve_policy(config.level, freshness_bound=config.freshness_bound)
        self.env = Environment()
        self.rngs = RngRegistry(config.seed)
        self.network = Network(
            self.env,
            self.rngs.stream("network"),
            config.latency,
            duplicate_prob=config.net_duplicate_prob,
            reorder_prob=config.net_reorder_prob,
            fault_rng=(
                self.rngs.stream("network:faults")
                if config.net_duplicate_prob > 0 or config.net_reorder_prob > 0
                else None
            ),
        )
        self.templates = workload.catalog()
        self.params = config.params or workload.performance_params()
        self.history: Optional[RunHistory] = RunHistory() if config.record_history else None

        self.replica_names = [f"replica-{i}" for i in range(config.num_replicas)]
        self.replicas: dict[str, ReplicaProxy] = {}
        speed_factors = draw_speed_factors(
            self.params, self.rngs.stream("speed"), config.num_replicas
        )
        schemas = list(workload.schemas())
        heartbeat = config.heartbeat_settings
        standby_name = "certifier-standby" if config.standby_certifier else None
        #: None for num_partitions=1 — every layer then runs its legacy path
        self.partition_map = config.partition_map
        for name, speed in zip(self.replica_names, speed_factors):
            database = Database(name=f"{name}-db")
            for schema in schemas:
                database.create_table(schema)
            # Identical population on every copy: a fresh registry per
            # replica replays the same "populate" stream.
            workload.populate(database, RngRegistry(config.seed).stream("populate"))
            if database.version != 0:
                raise RuntimeError("populate() must not advance the database version")
            engine = StorageEngine(database, name=f"{name}-engine")
            perf = ReplicaPerformance(self.params, self.rngs.stream(f"perf:{name}"), speed)
            self.replicas[name] = ReplicaProxy(
                env=self.env,
                network=self.network,
                name=name,
                engine=engine,
                perf=perf,
                level=self.policy,
                templates=self.templates,
                precheck_committed=config.precheck_committed,
                early_certification=config.early_certification,
                certify_reads=config.certify_reads,
                vacuum_interval_ms=config.vacuum_interval_ms,
                heartbeat=heartbeat,
                standby_name=standby_name,
                certify_timeout_ms=config.certify_timeout_ms,
                batch_refresh_apply=config.batch_refresh_apply,
                refresh_batch_limit=config.refresh_batch_limit,
                partition_map=self.partition_map,
            )

        # Anti-entropy oracles: seeded from replica 0's populated database at
        # version 0 (every copy loads the identical initial data set).  The
        # standby keeps its own tracker, fed from the records it tails, so a
        # promoted certifier still holds a live oracle.
        scrub_settings = config.scrub_settings
        digest_tracker = None
        standby_tracker = None
        if scrub_settings is not None:
            seed_db = self.replicas[self.replica_names[0]].engine.database
            digest_tracker = DigestTracker.from_database(seed_db)
            if config.standby_certifier:
                standby_tracker = DigestTracker.from_database(seed_db)

        self.certifier = Certifier(
            env=self.env,
            network=self.network,
            perf=CertifierPerformance(self.params, self.rngs.stream("perf:certifier")),
            replica_names=list(self.replica_names),
            level=self.policy,
            log=DecisionLog(config.log_path),
            heartbeat=heartbeat,
            standby_name=standby_name,
            certification_mode=config.certification_mode,
            inbound_queue_bound=config.certifier_queue_bound,
            partition_map=self.partition_map,
            departed_grace_ms=config.departed_grace_ms,
            digest_tracker=digest_tracker,
        )
        self.load_balancer = LoadBalancer(
            env=self.env,
            network=self.network,
            replica_names=list(self.replica_names),
            level=self.policy,
            templates=self.templates,
            history=self.history,
            routing=config.routing,
            rng=self.rngs.stream("lb-routing"),
            freshness_bound=config.freshness_bound,
            heartbeat=heartbeat,
            request_deadline_ms=config.request_deadline_ms,
            max_attempts=config.max_attempts,
            overload=config.overload_settings,
            partition_map=self.partition_map,
        )
        self.standby: Optional[CertifierStandby] = None
        if config.standby_certifier:
            self.standby = CertifierStandby(
                env=self.env,
                network=self.network,
                perf=CertifierPerformance(
                    self.params, self.rngs.stream("perf:certifier-standby")
                ),
                replica_names=list(self.replica_names),
                level=self.policy,
                name=standby_name,
                heartbeat=heartbeat,
                promote_hook=self._adopt_certifier,
                certification_mode=config.certification_mode,
                partition_map=self.partition_map,
                departed_grace_ms=config.departed_grace_ms,
                digest_tracker=standby_tracker,
            )
        self.scrubber: Optional[Scrubber] = None
        if scrub_settings is not None:
            self.scrubber = Scrubber(
                env=self.env,
                network=self.network,
                replica_names=list(self.replica_names),
                # A callable, not the tracker: after a certifier failover the
                # promoted successor (adopted below) carries the standby's
                # tracker, and the scrubber must follow it.
                tracker_provider=lambda: self.certifier.digest_tracker,
                balancer=self.load_balancer,
                settings=scrub_settings,
            )
        self.bootstrap: Optional[BootstrapCoordinator] = None
        if config.bootstrap_enabled:
            self.bootstrap = BootstrapCoordinator(
                env=self.env,
                network=self.network,
                balancer=self.load_balancer,
                # A callable, not the certifier: a failover must re-point
                # in-flight bootstraps at the promoted successor.
                certifier_provider=lambda: self.certifier,
                # The live dict itself, so replicas added online are visible.
                replicas=self.replicas,
                scrubber=self.scrubber,
                settings=config.bootstrap_settings,
            )
            for proxy in self.replicas.values():
                proxy.bootstrap_name = self.bootstrap.name
        self._session_counter = 0
        self.client_pool: Optional[ClientPool] = None
        #: the unified metrics registry — every producer publishes here
        #: under stable dotted names; :meth:`stats` is a compatibility view
        self.metrics = self._build_metrics_registry()
        _set_latest(self.metrics)

    def _adopt_certifier(self, certifier: Certifier) -> None:
        """Promotion hook: the promoted standby becomes ``self.certifier`` so
        stats, audits and the injector keep seeing the live one."""
        self.certifier = certifier

    # -- level ---------------------------------------------------------------
    @property
    def level(self) -> Optional[ConsistencyLevel]:
        """The legacy enum member behind the configured policy (None for
        policies without one, e.g. ``bounded:k``)."""
        return self.policy.level

    # -- interactive use ------------------------------------------------------
    def open_session(self, session_id: Optional[str] = None) -> SyncSession:
        """Open a synchronous client session (one transaction at a time)."""
        if session_id is None:
            self._session_counter += 1
            session_id = f"session-{self._session_counter}"
        return SyncSession(self, session_id)

    # -- load generation -----------------------------------------------------
    def add_clients(
        self,
        count: int,
        collector: Optional[MetricsCollector] = None,
        retry_aborts: bool = False,
        retry_budget_ratio: Optional[float] = None,
        retry_budget_burst: int = 10,
        degradable_reads: bool = False,
    ) -> MetricsCollector:
        """Spawn ``count`` closed-loop clients; returns their collector."""
        if collector is None:
            collector = MetricsCollector()
        if self.client_pool is None:
            self.client_pool = ClientPool(
                env=self.env,
                network=self.network,
                workload=self.workload,
                collector=collector,
                rngs=self.rngs,
                retry_aborts=retry_aborts,
                retry_budget_ratio=retry_budget_ratio,
                retry_budget_burst=retry_budget_burst,
                degradable_reads=degradable_reads,
            )
        self.client_pool.spawn(count)
        return collector

    def run(self, until_ms: float) -> None:
        """Advance virtual time to ``until_ms``."""
        self.env.run(until=until_ms)

    # -- elastic membership --------------------------------------------------
    def add_replica_online(self, name: Optional[str] = None) -> str:
        """Join a brand-new replica to a running cluster.

        The replica starts **empty** (schemas only — no populate pass): the
        bootstrap coordinator transfers a donor checkpoint, which carries the
        full visible state including the initial data set, then drives
        catch-up replay and the joining → catching-up → live lifecycle.  The
        node serves no client traffic and never pins the replication horizon
        until it goes live.  Returns the new replica's name.
        """
        if self.bootstrap is None:
            raise RuntimeError(
                "add_replica_online requires bootstrap_enabled=True "
                "(e.g. ClusterConfig.elastic())"
            )
        if name is None:
            name = f"replica-{len(self.replica_names)}"
        if name in self.replicas:
            raise ValueError(f"replica {name!r} already exists")
        database = Database(name=f"{name}-db")
        for schema in self.workload.schemas():
            database.create_table(schema)
        engine = StorageEngine(database, name=f"{name}-engine")
        speed = draw_speed_factors(self.params, self.rngs.stream(f"speed:{name}"), 1)[0]
        perf = ReplicaPerformance(self.params, self.rngs.stream(f"perf:{name}"), speed)
        config = self.config
        proxy = ReplicaProxy(
            env=self.env,
            network=self.network,
            name=name,
            engine=engine,
            perf=perf,
            level=self.policy,
            templates=self.templates,
            precheck_committed=config.precheck_committed,
            early_certification=config.early_certification,
            certify_reads=config.certify_reads,
            vacuum_interval_ms=config.vacuum_interval_ms,
            heartbeat=config.heartbeat_settings,
            standby_name="certifier-standby" if config.standby_certifier else None,
            certify_timeout_ms=config.certify_timeout_ms,
            batch_refresh_apply=config.batch_refresh_apply,
            refresh_batch_limit=config.refresh_batch_limit,
            partition_map=self.partition_map,
        )
        proxy.bootstrap_name = self.bootstrap.name
        self.replica_names.append(name)
        self.replicas[name] = proxy
        self.bootstrap.bootstrap(name)
        return name

    # -- inspection ----------------------------------------------------------
    def replica(self, index_or_name) -> ReplicaProxy:
        """Look up a replica by index or name."""
        if isinstance(index_or_name, int):
            return self.replicas[self.replica_names[index_or_name]]
        return self.replicas[index_or_name]

    def replica_versions(self) -> dict[str, int]:
        """Each replica's current ``V_local``."""
        return {name: proxy.v_local for name, proxy in self.replicas.items()}

    @property
    def commit_version(self) -> int:
        """The certifier's ``V_commit`` — the global database version."""
        return self.certifier.commit_version

    # -- metrics registry ----------------------------------------------------
    def _certifier_metrics(self) -> dict:
        """Raw certifier tree: the component's own ``stats()`` plus the
        identity/version fields the legacy snapshot exposed at top level."""
        certifier = self.certifier
        return {
            "name": certifier.name,
            "epoch": certifier.epoch,
            "mode": certifier.certification_mode,
            "row_comparisons": certifier.row_comparisons,
            "commit_version": certifier.commit_version,
            "replication_horizon": certifier.replication_horizon(),
            **certifier.stats(),
        }

    def _balancer_metrics(self) -> dict:
        lb = self.load_balancer
        return {
            "v_system": lb.v_system,
            "outstanding": lb.outstanding_count,
            "timed_out": lb.timed_out_count,
            "rerouted_reads": lb.rerouted_reads,
            "retried_updates": lb.retried_updates,
            "fate_commits": lb.fate_commits,
            "fate_aborts": lb.fate_aborts,
            "shed": lb.shed_count,
            "deadline_shed": lb.deadline_shed_count,
            "degraded": lb.degraded_count,
            "valve_open": lb.valve_open,
            "unresolved": lb.unresolved_count,
            "rejected": lb.rejected_count,
            "quarantines": lb.quarantine_count,
            **lb.stats(),
        }

    def _build_metrics_registry(self) -> MetricsRegistry:
        """Wire every producer into one registry of stable dotted names
        (``kernel.events_processed``, ``certifier.shard.0.conflicts``,
        ``scrub.rounds``, …; full catalog in docs/OBSERVABILITY.md)."""
        registry = MetricsRegistry()
        registry.register(
            "cluster",
            lambda: {
                "time_ms": self.env.now,
                "level": self.policy.label,
                "num_replicas": len(self.replica_names),
            },
        )
        registry.register("kernel", self.env.metrics)
        registry.register(
            "certifier", self._certifier_metrics, transform=_canonical_certifier
        )
        registry.register("balancer", self._balancer_metrics)
        registry.register(
            "network",
            lambda: {
                "sent": self.network.sent_count,
                "dropped": self.network.dropped_count,
                "dropped_by_reason": dict(self.network.dropped_by_reason),
                "injected": self.network.injected_count,
                "injected_by_reason": dict(self.network.injected_by_reason),
            },
        )
        registry.register(
            "storage",
            lambda: {
                "scan_fallbacks": sum(
                    proxy.engine.database.scan_fallbacks()
                    for proxy in self.replicas.values()
                ),
                "plan_cache": _sql.plan_cache().stats(),
            },
        )
        registry.register(
            "scrub",
            lambda: self.scrubber.stats() if self.scrubber is not None else None,
            transform=_canonical_scrub,
        )
        registry.register(
            "bootstrap",
            lambda: self.bootstrap.stats() if self.bootstrap is not None else None,
        )
        registry.register(
            "replica",
            lambda: {
                name: {
                    "v_local": proxy.v_local,
                    "lag": self.certifier.commit_version - proxy.v_local,
                    "pending_refresh": proxy.pending_refresh_count,
                    "cpu_busy_ms": proxy.cpu.busy_slot_ms,
                    "executed": proxy.executed_count,
                    "committed": proxy.committed_count,
                    "aborted": proxy.aborted_count,
                    "early_aborts": proxy.early_abort_count,
                    "crashed": proxy.crashed,
                }
                for name, proxy in self.replicas.items()
            },
        )
        registry.register("trace", TRACER.stats)
        return registry

    def stats(self) -> dict:
        """A structured snapshot of the cluster's health.

        Per replica: ``V_local``, the refresh backlog, cumulative CPU busy
        time and abort counters; plus the certifier's ``V_commit``,
        replication horizon and decision counts, and the balancer's view.
        Intended for monitoring loops and tests.

        This is the **legacy compatibility view** over :attr:`metrics` —
        the same providers, re-assembled into the historical nested shape.
        New code should read ``cluster.metrics`` (stable dotted names)
        instead.
        """
        registry = self.metrics
        cert = registry.tree("certifier", raw=True)
        balancer = registry.tree("balancer", raw=True)
        kernel = registry.tree("kernel", raw=True)
        return {
            "time_ms": self.env.now,
            "level": self.policy.label,
            "commit_version": cert["commit_version"],
            "replication_horizon": cert["replication_horizon"],
            "certified": cert["certified"],
            "certification_aborts": cert["aborts"],
            "certifier_name": cert["name"],
            "certifier_epoch": cert["epoch"],
            "certification_mode": cert["mode"],
            "row_comparisons": cert["row_comparisons"],
            "certifier_backpressure_rejects": cert["backpressure_rejects"],
            "partition": {
                "certifier": self.certifier.stats(),
                "balancer": self.load_balancer.stats(),
            },
            "network": registry.tree("network", raw=True),
            "scrub": registry.tree("scrub", raw=True),
            "bootstrap": registry.tree("bootstrap", raw=True),
            "balancer": {
                "v_system": balancer["v_system"],
                "outstanding": balancer["outstanding"],
                "timed_out": balancer["timed_out"],
                "rerouted_reads": balancer["rerouted_reads"],
                "retried_updates": balancer["retried_updates"],
                "fate_commits": balancer["fate_commits"],
                "fate_aborts": balancer["fate_aborts"],
                "pending_depth": balancer["pending_depth"],
                "shed": balancer["shed"],
                "deadline_shed": balancer["deadline_shed"],
                "degraded": balancer["degraded"],
                "valve_open": balancer["valve_open"],
            },
            "kernel": {
                "events_processed": kernel["events_processed"],
                "immediate_scheduled": kernel["immediate_scheduled"],
            },
            "storage": registry.tree("storage", raw=True),
            "replicas": registry.tree("replica", raw=True),
        }

    def quiesce(self, settle_ms: float = 50.0, max_wait_ms: float = 60_000.0) -> None:
        """Advance time until all replicas have applied every committed
        version (or ``max_wait_ms`` elapses).  Useful in tests/examples to
        observe the fully propagated state."""
        deadline = self.env.now + max_wait_ms
        while self.env.now < deadline:
            target = self.certifier.commit_version
            if all(p.v_local >= target for p in self.replicas.values() if not p.crashed):
                return
            self.env.run(until=min(self.env.now + settle_ms, deadline))
