"""Consistency configurations.

The four configurations the paper evaluates (Section IV), plus a deliberately
weak baseline used to *demonstrate* strong-consistency violations:

* :attr:`ConsistencyLevel.EAGER` — eager strong consistency: an update
  transaction is acknowledged only after every replica has committed it
  (global commit delay).
* :attr:`ConsistencyLevel.SC_COARSE` — lazy coarse-grained strong
  consistency: transactions are tagged with the global database version
  ``V_system`` and delayed at the replica until ``V_local >= V_system``.
* :attr:`ConsistencyLevel.SC_FINE` — lazy fine-grained strong consistency:
  transactions are tagged with the highest version among the tables in their
  table-set, so only the relevant updates must be applied before start.
* :attr:`ConsistencyLevel.SESSION` — session consistency: transactions wait
  only for the updates of *their own session's* previous transactions.
* :attr:`ConsistencyLevel.BASELINE` — plain GSI with no start
  synchronization.  Not in the paper's evaluation; it exists so the history
  checkers can exhibit detectable strong-consistency violations.
* :attr:`ConsistencyLevel.RELAXED` — the relaxed-currency model the paper
  contrasts with (Bernstein et al. [6], Guo et al. [21]): each transaction
  carries a freshness bound of *k* versions and is delayed only until
  ``V_local >= V_system - k``.  Bound 0 degenerates to SC-COARSE; an
  infinite bound degenerates to BASELINE.
"""

from __future__ import annotations

import enum

__all__ = ["ConsistencyLevel"]


class ConsistencyLevel(enum.Enum):
    """Which guarantee the replicated system enforces, and how."""

    EAGER = "eager"
    SC_COARSE = "sc-coarse"
    SC_FINE = "sc-fine"
    SESSION = "session"
    BASELINE = "baseline"
    RELAXED = "relaxed"

    @property
    def is_strong(self) -> bool:
        """True for configurations that guarantee strong consistency."""
        return self in (
            ConsistencyLevel.EAGER,
            ConsistencyLevel.SC_COARSE,
            ConsistencyLevel.SC_FINE,
        )

    @property
    def is_lazy(self) -> bool:
        """True when update propagation is lazy (commit acks do not wait for
        remote replicas)."""
        return self is not ConsistencyLevel.EAGER

    @property
    def uses_start_delay(self) -> bool:
        """True for configurations that may delay transaction start."""
        return self in (
            ConsistencyLevel.SC_COARSE,
            ConsistencyLevel.SC_FINE,
            ConsistencyLevel.SESSION,
            ConsistencyLevel.RELAXED,
        )

    @property
    def label(self) -> str:
        """Short label used in reports (matches the paper's legends)."""
        return _LABELS[self]


_LABELS = {
    ConsistencyLevel.EAGER: "EAGER",
    ConsistencyLevel.SC_COARSE: "SC-COARSE",
    ConsistencyLevel.SC_FINE: "SC-FINE",
    ConsistencyLevel.SESSION: "SESSION",
    ConsistencyLevel.BASELINE: "BASELINE",
    ConsistencyLevel.RELAXED: "RELAXED",
}
