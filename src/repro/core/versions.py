"""Version accounting — the heart of the paper's contribution.

The load balancer maintains three pieces of soft state (Section IV):

* ``V_system`` — the version of the latest update transaction committed and
  acknowledged to *any* client (drives SC-COARSE);
* per-table versions ``V_t`` — the version of the latest acknowledged commit
  that wrote table *t* (drives SC-FINE; Table I of the paper walks through
  the maintenance rules reproduced by :class:`VersionTracker`);
* per-session versions — the version the session's last transaction
  committed at / observed (drives SESSION).

The *minimum database version a replica must reach before starting a
transaction* — the single number the whole technique turns on — is computed
by the configured :class:`~repro.core.policy.ConsistencyPolicy` from this
tracker's state; :meth:`VersionTracker.start_version` remains as a
level-keyed convenience wrapper.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from .consistency import ConsistencyLevel

__all__ = ["VersionTracker"]


class VersionTracker:
    """The load balancer's version and session accounting.

    With a :class:`~repro.core.partition.PartitionMap` attached, the
    tracker additionally generalizes ``V_system`` to a per-partition
    vector: component ``p`` is the version of the latest acknowledged
    commit whose writeset touched partition ``p`` (maintained from the
    same response tags that drive the per-table versions).
    """

    def __init__(self, partition_map=None):
        self._v_system = 0
        self._table_versions: dict[str, int] = {}
        self._session_versions: dict[str, int] = {}
        #: optional table-group partition map (enables the vector view)
        self.partition_map = partition_map
        self._partition_versions: dict[int, int] = {}

    # -- state views ---------------------------------------------------------
    @property
    def v_system(self) -> int:
        """Latest acknowledged committed database version (``V_system``)."""
        return self._v_system

    def table_version(self, table: str) -> int:
        """``V_t``: latest acknowledged version that updated ``table``
        (0 when the table has never been updated)."""
        return self._table_versions.get(table, 0)

    def table_versions(self) -> Mapping[str, int]:
        """Snapshot of all per-table versions."""
        return dict(self._table_versions)

    def session_version(self, session_id: str) -> int:
        """The version the session must observe (0 for a new session)."""
        return self._session_versions.get(session_id, 0)

    def partition_version(self, partition: int) -> int:
        """Component ``partition`` of the per-partition version vector:
        the latest acknowledged commit that touched the partition (0 when
        nothing has, or when no partition map is attached)."""
        return self._partition_versions.get(partition, 0)

    def partition_versions(self) -> Mapping[int, int]:
        """Snapshot of the per-partition version vector."""
        return dict(self._partition_versions)

    # -- updates (driven by replica responses) -------------------------------
    def observe_commit(
        self,
        commit_version: Optional[int],
        updated_tables: Iterable[str] = (),
        session_id: Optional[str] = None,
        replica_version: Optional[int] = None,
    ) -> None:
        """Account for a transaction acknowledgment.

        ``commit_version`` is None for read-only transactions (they consume
        no version).  ``updated_tables`` is the writeset's table set.
        ``replica_version`` is the ``V_local`` the proxy tagged the response
        with; session consistency tracks it so a client's next transaction
        sees a monotonically non-decreasing snapshot.
        """
        if commit_version is not None:
            updated_tables = tuple(updated_tables)
            if commit_version > self._v_system:
                self._v_system = commit_version
            for table in updated_tables:
                if commit_version > self._table_versions.get(table, 0):
                    self._table_versions[table] = commit_version
            if self.partition_map is not None:
                for p in self.partition_map.partitions_for(updated_tables):
                    if commit_version > self._partition_versions.get(p, 0):
                        self._partition_versions[p] = commit_version
        if session_id is not None:
            observed = replica_version if replica_version is not None else 0
            if commit_version is not None:
                observed = max(observed, commit_version)
            if observed > self._session_versions.get(session_id, 0):
                self._session_versions[session_id] = observed

    # -- the decision the paper proposes ------------------------------------
    def start_version(
        self,
        level: ConsistencyLevel,
        table_set: Optional[Iterable[str]] = None,
        session_id: Optional[str] = None,
        freshness_bound: Optional[int] = None,
    ) -> int:
        """Minimum ``V_local`` the receiving replica must reach before the
        transaction may start.

        Delegates to the :class:`~repro.core.policy.ConsistencyPolicy`
        registered for ``level``:

        * EAGER and BASELINE never delay transaction start (version 0);
        * SC-COARSE requires the full ``V_system``;
        * SC-FINE requires ``max(V_t for t in table_set)`` — the highest
          version among the tables the transaction can access (Table I's
          ``V_start``).  When the table-set is unknown it falls back to
          ``V_system``, i.e. degrades to coarse-grained, which is always
          safe;
        * SESSION requires the session's last observed version;
        * RELAXED requires ``V_system - freshness_bound`` (clamped at 0) —
          the relaxed-currency model's "at most k versions stale".
        """
        from .policy import resolve_policy  # deferred: policy imports us

        policy = resolve_policy(level, freshness_bound=freshness_bound)
        return policy.start_version(self, table_set=table_set, session_id=session_id)

    def forget_session(self, session_id: str) -> None:
        """Drop a finished session's entry (soft state)."""
        self._session_versions.pop(session_id, None)
