"""The paper's contribution: consistency configurations over lazy replication.

Public API: build a :class:`ReplicatedDatabase` over a workload with one of
the :class:`ConsistencyLevel` configurations, then drive it with sessions or
closed-loop clients.
"""

from .cluster import ClusterConfig, ReplicatedDatabase
from .consistency import ConsistencyLevel
from .session import SyncSession
from .versions import VersionTracker

__all__ = [
    "ClusterConfig",
    "ConsistencyLevel",
    "ReplicatedDatabase",
    "SyncSession",
    "VersionTracker",
]
