"""The paper's contribution: consistency configurations over lazy replication.

Public API: build a :class:`ReplicatedDatabase` over a workload with one of
the :class:`ConsistencyLevel` configurations (or any registered
:class:`ConsistencyPolicy`), then drive it with sessions or closed-loop
clients.
"""

from .cluster import ClusterConfig, ReplicatedDatabase
from .consistency import ConsistencyLevel
from .partition import PartitionMap
from .policy import (
    BoundedStalenessPolicy,
    ConsistencyPolicy,
    available_policies,
    register_policy,
    resolve_policy,
)
from .session import SyncSession
from .versions import VersionTracker

__all__ = [
    "BoundedStalenessPolicy",
    "ClusterConfig",
    "ConsistencyLevel",
    "ConsistencyPolicy",
    "PartitionMap",
    "ReplicatedDatabase",
    "SyncSession",
    "VersionTracker",
    "available_policies",
    "register_policy",
    "resolve_policy",
]
