"""repro — reproduction of "Strongly consistent replication for a bargain"
(Krikellas, Elnikety, Vagena, Hodson; ICDE 2010).

A multi-master replicated database prototype with four consistency
configurations — eager strong consistency, lazy coarse-grained strong
consistency, lazy fine-grained strong consistency, and session
consistency — running on a deterministic discrete-event-simulated cluster
with a from-scratch snapshot-isolation storage engine.

Quickstart::

    from repro import ReplicatedDatabase, ConsistencyLevel
    from repro.workloads import MicroBenchmark

    cluster = ReplicatedDatabase(
        MicroBenchmark(update_types=10, rows_per_table=1000),
        num_replicas=3,
        level=ConsistencyLevel.SC_FINE,
        seed=42,
    )
    session = cluster.open_session("alice")
    response = session.execute("micro-update-0", {"key": 7})
    print(response.commit_version)
"""

from .core import (
    BoundedStalenessPolicy,
    ClusterConfig,
    ConsistencyLevel,
    ConsistencyPolicy,
    ReplicatedDatabase,
    SyncSession,
    VersionTracker,
    available_policies,
    register_policy,
    resolve_policy,
)

__version__ = "1.0.0"

__all__ = [
    "BoundedStalenessPolicy",
    "ClusterConfig",
    "ConsistencyLevel",
    "ConsistencyPolicy",
    "ReplicatedDatabase",
    "SyncSession",
    "VersionTracker",
    "available_policies",
    "register_policy",
    "resolve_policy",
    "__version__",
]
