"""Experiment runner: one measured run of the replicated system.

A run follows the paper's methodology (Section V-A): deploy the cluster,
attach closed-loop clients, let the system warm up, then measure for a fixed
interval and report throughput, response time, and stage breakdowns.
All times are virtual; a given :class:`ExperimentConfig` is fully
deterministic in its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Optional

from ..core.cluster import ClusterConfig, ReplicatedDatabase
from ..core.consistency import ConsistencyLevel
from ..core.policy import ConsistencyPolicy
from ..histories.checkers import (
    is_session_consistent,
    is_strongly_consistent,
)
from ..metrics.collector import MetricsCollector, MetricsSummary
from ..metrics.profiler import PROFILER
from ..metrics.tracing import TRACER
from ..middleware.perfmodel import PerformanceParams
from ..sim.network import LatencyModel
from ..workloads.base import Workload

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "ReplicatedResult",
    "run_experiment",
    "run_replicated",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to reproduce one measured run."""

    workload_factory: Callable[[], Workload]
    #: a ConsistencyLevel member, a registered policy spec, or a policy
    level: "ConsistencyLevel | str | ConsistencyPolicy"
    num_replicas: int
    clients: int
    warmup_ms: float = 5_000.0
    measure_ms: float = 20_000.0
    seed: int = 0
    params: Optional[PerformanceParams] = None
    latency: LatencyModel = field(default_factory=LatencyModel)
    record_history: bool = False
    retry_aborts: bool = False
    label: str = ""
    #: enable the wall-clock profiler for this run and attach its report
    #: to the result (see :mod:`repro.metrics.profiler`)
    profile: bool = False
    #: enable per-transaction tracing for this run and attach the captured
    #: spans to the result (see :mod:`repro.metrics.tracing`)
    trace: bool = False
    #: fraction of transactions to trace when ``trace`` is set (0..1);
    #: deterministic in the request id, never touches the RNG streams
    trace_sample_rate: float = 1.0

    @property
    def total_ms(self) -> float:
        return self.warmup_ms + self.measure_ms


@dataclass(frozen=True)
class ExperimentResult:
    """Measured outcome of one run."""

    config: ExperimentConfig
    summary: MetricsSummary
    certified: int
    certification_aborts: int
    early_aborts: int
    final_commit_version: int
    strongly_consistent: Optional[bool] = None
    session_consistent: Optional[bool] = None
    #: rendered wall-clock profile, when the run had ``profile`` set
    profile_report: Optional[str] = None
    #: captured trace spans, when the run had ``trace`` set
    trace_spans: Optional[tuple] = None

    @property
    def tps(self) -> float:
        return self.summary.tps

    @property
    def response_ms(self) -> float:
        return self.summary.mean_response_ms

    @property
    def sync_delay_ms(self) -> float:
        return self.summary.mean_sync_delay_ms


@dataclass(frozen=True)
class ReplicatedResult:
    """Aggregate of several runs of one configuration (the paper's
    methodology: "Each experiment consists of 10 separate runs ... We
    report average measured values, with the deviation being less than 5%
    in all cases")."""

    config: ExperimentConfig
    runs: tuple[ExperimentResult, ...]

    @property
    def mean_tps(self) -> float:
        return sum(r.tps for r in self.runs) / len(self.runs)

    @property
    def mean_response_ms(self) -> float:
        return sum(r.response_ms for r in self.runs) / len(self.runs)

    @property
    def tps_deviation(self) -> float:
        """Max relative deviation of any run's TPS from the mean."""
        mean = self.mean_tps
        if mean == 0:
            return 0.0
        return max(abs(r.tps - mean) / mean for r in self.runs)

    @property
    def response_deviation(self) -> float:
        """Max relative deviation of any run's response time from the mean."""
        mean = self.mean_response_ms
        if mean == 0:
            return 0.0
        return max(abs(r.response_ms - mean) / mean for r in self.runs)


def run_replicated(config: ExperimentConfig, num_runs: int = 10) -> ReplicatedResult:
    """Run the experiment ``num_runs`` times with distinct seeds derived
    from ``config.seed`` and aggregate, as the paper's runs do."""
    if num_runs < 1:
        raise ValueError("num_runs must be >= 1")
    from dataclasses import replace

    runs = tuple(
        run_experiment(replace(config, seed=config.seed * 1_000 + i))
        for i in range(num_runs)
    )
    return ReplicatedResult(config=config, runs=runs)


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Build the cluster, run warm-up + measurement, aggregate the metrics.

    When ``record_history`` is set, the run history is checked for strong
    and session consistency so experiments double as correctness evidence.
    """
    started_profiler = False
    if config.profile and not PROFILER.enabled:
        PROFILER.reset()
        PROFILER.enable()
        started_profiler = True
    started_tracer = False
    if config.trace and not TRACER.enabled:
        TRACER.reset()
        TRACER.configure(sample_rate=config.trace_sample_rate)
        TRACER.enable()
        started_tracer = True
    wall_start = perf_counter()

    with PROFILER.section("cluster.build"):
        workload = config.workload_factory()
        cluster = ReplicatedDatabase(
            workload,
            ClusterConfig(
                num_replicas=config.num_replicas,
                level=config.level,
                seed=config.seed,
                params=config.params,
                latency=config.latency,
                record_history=config.record_history,
            ),
        )
        collector = MetricsCollector(
            measure_start=config.warmup_ms, measure_end=config.total_ms
        )
        cluster.add_clients(config.clients, collector, retry_aborts=config.retry_aborts)
    with PROFILER.section("run.warmup"):
        cluster.run(config.warmup_ms)
    with PROFILER.section("run.measure"):
        cluster.run(config.total_ms)

    profile_report = None
    if config.profile:
        PROFILER.count("kernel.events", cluster.env.events_processed)
        PROFILER.count("kernel.immediate", cluster.env.immediate_scheduled)
        profile_report = PROFILER.report(
            events=cluster.env.events_processed,
            wall_s=perf_counter() - wall_start,
        )
    if started_profiler:
        PROFILER.disable()
    trace_spans = None
    if config.trace:
        trace_spans = tuple(TRACER.spans)
    if started_tracer:
        TRACER.disable()

    early_aborts = sum(p.early_abort_count for p in cluster.replicas.values())
    strongly = session = None
    if config.record_history and cluster.history is not None:
        strongly = is_strongly_consistent(cluster.history)
        session = is_session_consistent(cluster.history, observational=True)

    return ExperimentResult(
        config=config,
        summary=collector.summary(),
        certified=cluster.certifier.certified_count,
        certification_aborts=cluster.certifier.abort_count,
        early_aborts=early_aborts,
        final_commit_version=cluster.commit_version,
        strongly_consistent=strongly,
        session_consistent=session,
        profile_report=profile_report,
        trace_spans=trace_spans,
    )
