"""The paper's experiments: one function per table/figure.

Every function regenerates the corresponding artifact's rows/series:

* :func:`table1` — Table I, database and table version maintenance;
* :func:`fig3`   — Figure 3, micro-benchmark throughput vs update mix;
* :func:`fig4`   — Figure 4, latency breakdown at 25 % / 100 % updates;
* :func:`fig5`   — Figure 5, TPC-W throughput and response time, scaled load;
* :func:`fig6`   — Figure 6, TPC-W synchronization delay, scaled load;
* :func:`fig7`   — Figure 7, TPC-W response time, fixed load.

Beyond the paper, :func:`availability` measures throughput around an
injected replica crash, and :func:`saturation` / :func:`retry_storm` drive
the cluster past its capacity knee with an open-loop generator to evaluate
the overload-protection stack (see ``docs/TUNING.md``).

``quick=True`` (the default, used by the pytest benches) shrinks the
warm-up/measurement windows and the sweep so a figure regenerates in tens of
seconds; ``quick=False`` runs the paper-scale sweep used for EXPERIMENTS.md.
Results from the TPC-W sweeps are cached per-process so Figures 5 and 6
share their runs, as they do in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.consistency import ConsistencyLevel
from ..core.policy import BoundedStalenessPolicy
from ..core.versions import VersionTracker
from ..metrics.report import format_breakdown, format_series, format_table
from ..metrics.stages import StageTimings
from ..workloads.microbench import MicroBenchmark
from ..workloads.tpcw import TPCWBenchmark
from .runner import ExperimentConfig, ExperimentResult, run_experiment

__all__ = [
    "LEVELS",
    "AvailabilityMeasurement",
    "AvailabilityResult",
    "SeriesResult",
    "BreakdownResult",
    "SaturationResult",
    "RetryStormResult",
    "availability",
    "saturation",
    "retry_storm",
    "table1",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "bounded_staleness_sweep",
    "clear_cache",
]

#: the four configurations the paper evaluates, in its plotting order
LEVELS = (
    ConsistencyLevel.SC_COARSE,
    ConsistencyLevel.SC_FINE,
    ConsistencyLevel.SESSION,
    ConsistencyLevel.EAGER,
)

#: clients per replica for the scaled-load TPC-W experiments (Section V-C.1)
TPCW_CLIENTS_PER_REPLICA = {"browsing": 10, "shopping": 8, "ordering": 5}


@dataclass
class SeriesResult:
    """One figure's data: x-axis plus one series per configuration."""

    title: str
    x_label: str
    x_values: list
    series: dict[str, list[float]]

    def render(self, floatfmt: str = "{:.1f}", chart: bool = True) -> str:
        """The paper-style data table, optionally followed by an ASCII plot
        of the same series (the figure itself)."""
        table = format_series(
            self.x_label, self.x_values, self.series, title=self.title,
            floatfmt=floatfmt,
        )
        if not chart:
            return table
        from ..metrics.ascii_chart import line_chart

        plot = line_chart(
            [float(x) for x in self.x_values],
            self.series,
            x_label=self.x_label,
        )
        return table + "\n\n" + plot

    def value(self, label: str, x) -> float:
        """Convenience lookup: the series value at one x point."""
        return self.series[label][self.x_values.index(x)]


@dataclass
class BreakdownResult:
    """Figure-4 style data: per-configuration stage breakdowns."""

    title: str
    breakdowns: dict[str, StageTimings]
    read_only_breakdowns: dict[str, StageTimings] = field(default_factory=dict)

    def render(self) -> str:
        parts = [format_breakdown(self.breakdowns, title=self.title)]
        if self.read_only_breakdowns:
            parts.append(
                format_breakdown(
                    self.read_only_breakdowns,
                    title=f"{self.title} — read-only transactions",
                )
            )
        return "\n\n".join(parts)


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------

def table1() -> str:
    """Reproduce Table I: version maintenance for T1..T6 on tables A, B, C.

    Deterministic — exercises :class:`VersionTracker` exactly as the paper's
    walkthrough does, then shows the SC-FINE vs SC-COARSE start version for
    the final transaction T6 (which accesses table A only).
    """
    tracker = VersionTracker()
    transactions = [
        ("T1", {"A"}),
        ("T2", {"B", "C"}),
        ("T3", {"B"}),
        ("T4", {"C"}),
        ("T5", {"B", "C"}),
        ("T6", {"A"}),
    ]
    rows = []
    footer = ""
    for name, tables in transactions:
        if name == "T6":
            # The paper's punchline: T6 accesses table A only, so SC-FINE
            # lets it start at V_local >= V_A = 1 while SC-COARSE demands
            # the full V_system = 5.
            fine = tracker.start_version(ConsistencyLevel.SC_FINE, table_set=tables)
            coarse = tracker.start_version(ConsistencyLevel.SC_COARSE)
            footer = (
                f"\nT6 (table A only) start requirement: SC-FINE V_local >= {fine}, "
                f"SC-COARSE V_local >= {coarse}."
            )
        commit_version = tracker.v_system + 1
        tracker.observe_commit(commit_version, tables)
        rows.append(
            [
                name,
                ",".join(sorted(tables)),
                tracker.v_system,
                tracker.table_version("A"),
                tracker.table_version("B"),
                tracker.table_version("C"),
            ]
        )
    table = format_table(
        ["Transaction", "Updated tables", "V_system", "V_A", "V_B", "V_C"],
        rows,
        title="Table I — database and table versions",
    )
    return table + footer


# ---------------------------------------------------------------------------
# Micro-benchmark (Figures 3 and 4)
# ---------------------------------------------------------------------------

def _micro_config(
    level,
    update_types: int,
    quick: bool,
    seed: int,
    num_replicas: int = 8,
    clients: int = 8,
) -> ExperimentConfig:
    rows = 1_000 if quick else 10_000
    return ExperimentConfig(
        workload_factory=lambda: MicroBenchmark(
            update_types=update_types, rows_per_table=rows
        ),
        level=level,
        num_replicas=num_replicas,
        clients=clients,
        warmup_ms=1_000.0 if quick else 10_000.0,
        measure_ms=4_000.0 if quick else 30_000.0,
        seed=seed,
        label=f"micro-{update_types}/40-{level.label}",
    )


def fig3(
    quick: bool = True,
    seed: int = 0,
    update_types: Optional[Sequence[int]] = None,
) -> SeriesResult:
    """Figure 3: micro-benchmark throughput vs update mix, 8 replicas."""
    if update_types is None:
        update_types = (0, 10, 20, 30, 40) if quick else (0, 5, 10, 15, 20, 25, 30, 35, 40)
    series: dict[str, list[float]] = {level.label: [] for level in LEVELS}
    for count in update_types:
        for level in LEVELS:
            result = run_experiment(_micro_config(level, count, quick, seed))
            series[level.label].append(result.tps)
    return SeriesResult(
        title="Figure 3 — micro-benchmark throughput (TPS), 8 replicas",
        x_label="update%",
        x_values=[int(round(100 * c / 40)) for c in update_types],
        series=series,
    )


def fig4(quick: bool = True, seed: int = 0) -> dict[str, BreakdownResult]:
    """Figure 4: latency breakdown for the 25 % and 100 % update mixes."""
    results: dict[str, BreakdownResult] = {}
    for label, update_types in (("25% update mix", 10), ("100% update mix", 40)):
        update_breakdowns: dict[str, StageTimings] = {}
        read_breakdowns: dict[str, StageTimings] = {}
        for level in LEVELS:
            result = run_experiment(_micro_config(level, update_types, quick, seed))
            update_breakdowns[level.label] = result.summary.update_breakdown
            read_breakdowns[level.label] = result.summary.read_only_breakdown
        results[label] = BreakdownResult(
            title=f"Figure 4 — latency breakdown, {label} (update transactions, ms)",
            breakdowns=update_breakdowns,
            read_only_breakdowns=read_breakdowns,
        )
    return results


def bounded_staleness_sweep(
    quick: bool = True,
    seed: int = 0,
    bounds: Sequence[int] = (0, 1, 2, 5, 10),
    update_types: int = 10,
) -> SeriesResult:
    """Beyond the paper: the freshness/performance trade-off of the
    ``BOUNDED(k)`` policy on the micro-benchmark.

    Sweeps the staleness bound *k*: ``BOUNDED(0)`` coincides with SC-COARSE
    (full ``V_system`` synchronization), and growing *k* trades staleness
    for a shorter synchronization start delay.  One series per metric so the
    trade-off is visible in a single table.
    """
    tps: list[float] = []
    response: list[float] = []
    sync_delay: list[float] = []
    for bound in bounds:
        result = run_experiment(
            _micro_config(BoundedStalenessPolicy(bound), update_types, quick, seed)
        )
        tps.append(result.tps)
        response.append(result.response_ms)
        sync_delay.append(result.sync_delay_ms)
    return SeriesResult(
        title=(
            "Bounded staleness — micro-benchmark "
            f"({int(round(100 * update_types / 40))}% update mix), 8 replicas"
        ),
        x_label="staleness bound k",
        x_values=list(bounds),
        series={
            "TPS": tps,
            "response ms": response,
            "sync delay ms": sync_delay,
        },
    )


# ---------------------------------------------------------------------------
# TPC-W (Figures 5, 6 and 7)
# ---------------------------------------------------------------------------

_tpcw_cache: dict[tuple, ExperimentResult] = {}


def clear_cache() -> None:
    """Drop the per-process TPC-W result cache."""
    _tpcw_cache.clear()


# ---------------------------------------------------------------------------
# Availability under a replica crash (self-healing middleware)
# ---------------------------------------------------------------------------

@dataclass
class AvailabilityMeasurement:
    """What one level's crash experiment produced."""

    detection_latency_ms: float
    baseline_tps: float
    dip_tps: float
    recovery_ms: float  # math.inf when throughput never returned to 90 %

    @property
    def dip_depth_pct(self) -> float:
        if self.baseline_tps <= 0:
            return 0.0
        return 100.0 * (1.0 - self.dip_tps / self.baseline_tps)


@dataclass
class AvailabilityResult:
    """Availability experiment data: one measurement per configuration."""

    title: str
    measurements: dict[str, AvailabilityMeasurement]

    def render(self) -> str:
        header = (
            f"{'config':>10} | {'detect (ms)':>11} | {'baseline tps':>12} | "
            f"{'dip tps':>9} | {'dip depth':>9} | {'recover (ms)':>12}"
        )
        rows = [self.title, "", header, "-" * len(header)]
        for label, m in self.measurements.items():
            recover = (
                f"{m.recovery_ms:12.0f}" if math.isfinite(m.recovery_ms)
                else f"{'never':>12}"
            )
            rows.append(
                f"{label:>10} | {m.detection_latency_ms:11.1f} | "
                f"{m.baseline_tps:12.0f} | {m.dip_tps:9.0f} | "
                f"{m.dip_depth_pct:8.0f}% | {recover}"
            )
        return "\n".join(rows)


def availability(
    quick: bool = True,
    seed: int = 0,
    levels: Optional[Sequence[ConsistencyLevel]] = None,
    bucket_ms: float = 100.0,
) -> AvailabilityResult:
    """Availability around an injected replica crash, per configuration.

    A self-healing cluster (heartbeat detection, request deadlines, standby
    certifier) runs a mixed micro-benchmark; one replica crashes mid-run
    with **no oracle notification** — the middleware must detect it.  The
    experiment reports, per consistency level:

    * **detection latency** — crash until the balancer's monitor suspects;
    * **throughput dip** — the worst post-crash bucket vs the pre-crash
      baseline;
    * **time to recover** — crash until bucketed throughput is back at 90 %
      of the baseline.

    The interesting contrast is SC-FINE vs EAGER: the eager protocol keeps
    every update waiting on the dead replica until the certifier excludes
    it, so its dip is total; the lazy levels keep committing on the
    surviving replicas throughout.
    """
    from ..core.cluster import ClusterConfig, ReplicatedDatabase
    from ..faults.injector import FaultInjector
    from ..metrics.collector import MetricsCollector

    if levels is None:
        levels = (ConsistencyLevel.SC_FINE, ConsistencyLevel.EAGER)
    warmup_ms = 800.0 if quick else 3_000.0
    crash_after_ms = 1_200.0 if quick else 4_000.0
    observe_ms = 2_000.0 if quick else 6_000.0
    victim = "replica-1"

    measurements: dict[str, AvailabilityMeasurement] = {}
    for level in levels:
        config = ClusterConfig.self_healing(
            num_replicas=4, level=level, seed=seed
        )
        cluster = ReplicatedDatabase(
            MicroBenchmark(update_types=20, rows_per_table=1_000), config
        )
        collector = MetricsCollector(measure_start=warmup_ms)
        cluster.add_clients(12, collector, retry_aborts=True)
        injector = FaultInjector(cluster)

        cluster.run(warmup_ms + crash_after_ms)
        crash_at = cluster.env.now
        injector.crash_replica(victim)
        cluster.run(crash_at + observe_ms)

        monitor = cluster.load_balancer.monitor
        detection = monitor.suspect_times.get(victim, math.inf) - crash_at

        timeline = collector.timeline(bucket_ms=bucket_ms)
        before = [tps for start, tps in timeline if start + bucket_ms <= crash_at]
        after = [(start, tps) for start, tps in timeline if start >= crash_at]
        baseline = sum(before) / len(before) if before else 0.0
        dip = min((tps for _, tps in after), default=0.0)
        dip_index = next(
            (i for i, (_, tps) in enumerate(after) if tps == dip), 0
        )
        # Recovery is counted from the crash to the first bucket at or
        # after the worst one that is back above 90 % of the baseline.
        recovery = math.inf
        for start, tps in after[dip_index:]:
            if tps >= 0.9 * baseline:
                recovery = start + bucket_ms - crash_at
                break

        measurements[level.label] = AvailabilityMeasurement(
            detection_latency_ms=detection,
            baseline_tps=baseline,
            dip_tps=dip,
            recovery_ms=recovery,
        )

    return AvailabilityResult(
        title=(
            "Availability — replica crash with heartbeat detection "
            f"(4 replicas, 12 clients, crash at t={crash_after_ms:.0f}ms "
            "after warm-up)"
        ),
        measurements=measurements,
    )


def _tpcw_run(
    mix: str,
    level: ConsistencyLevel,
    num_replicas: int,
    clients: int,
    quick: bool,
    seed: int,
) -> ExperimentResult:
    key = (mix, level, num_replicas, clients, quick, seed)
    if key not in _tpcw_cache:
        scale = 1 if quick else 2
        config = ExperimentConfig(
            workload_factory=lambda: TPCWBenchmark(
                mix=mix,
                num_items=300 * scale,
                num_customers=200 * scale,
                num_authors=100 * scale,
            ),
            level=level,
            num_replicas=num_replicas,
            clients=clients,
            warmup_ms=3_000.0 if quick else 10_000.0,
            measure_ms=12_000.0 if quick else 40_000.0,
            seed=seed,
            label=f"tpcw-{mix}-{level.label}-{num_replicas}r",
        )
        _tpcw_cache[key] = run_experiment(config)
    return _tpcw_cache[key]


def _replica_counts(quick: bool) -> list[int]:
    return [1, 2, 4, 8] if quick else [1, 2, 3, 4, 5, 6, 7, 8]


def fig5(
    quick: bool = True,
    seed: int = 0,
    mixes: Sequence[str] = ("browsing", "shopping", "ordering"),
) -> dict[str, dict[str, SeriesResult]]:
    """Figure 5: TPC-W throughput and response time under scaled load.

    Returns ``{mix: {"throughput": SeriesResult, "response": SeriesResult}}``
    covering sub-figures (a)–(f).
    """
    counts = _replica_counts(quick)
    results: dict[str, dict[str, SeriesResult]] = {}
    for mix in mixes:
        per_replica = TPCW_CLIENTS_PER_REPLICA[mix]
        tps: dict[str, list[float]] = {level.label: [] for level in LEVELS}
        resp: dict[str, list[float]] = {level.label: [] for level in LEVELS}
        for n in counts:
            for level in LEVELS:
                run = _tpcw_run(mix, level, n, per_replica * n, quick, seed)
                tps[level.label].append(run.tps)
                resp[level.label].append(run.response_ms)
        results[mix] = {
            "throughput": SeriesResult(
                title=f"Figure 5 — TPC-W {mix} mix throughput (TPS), scaled load",
                x_label="replicas",
                x_values=list(counts),
                series=tps,
            ),
            "response": SeriesResult(
                title=f"Figure 5 — TPC-W {mix} mix response time (ms), scaled load",
                x_label="replicas",
                x_values=list(counts),
                series=resp,
            ),
        }
    return results


def fig6(
    quick: bool = True,
    seed: int = 0,
    mixes: Sequence[str] = ("shopping", "ordering"),
) -> dict[str, SeriesResult]:
    """Figure 6: TPC-W synchronization delay under scaled load.

    Synchronization delay is the synchronization *start* delay for
    SC-COARSE/SC-FINE/SESSION and the *global commit* delay for EAGER.
    Shares its runs with Figure 5.
    """
    counts = _replica_counts(quick)
    results: dict[str, SeriesResult] = {}
    for mix in mixes:
        per_replica = TPCW_CLIENTS_PER_REPLICA[mix]
        series: dict[str, list[float]] = {level.label: [] for level in LEVELS}
        for n in counts:
            for level in LEVELS:
                run = _tpcw_run(mix, level, n, per_replica * n, quick, seed)
                series[level.label].append(run.sync_delay_ms)
        results[mix] = SeriesResult(
            title=f"Figure 6 — TPC-W {mix} mix synchronization delay (ms)",
            x_label="replicas",
            x_values=list(counts),
            series=series,
        )
    return results


def fig7(
    quick: bool = True,
    seed: int = 0,
    mixes: Sequence[str] = ("shopping", "ordering"),
) -> dict[str, SeriesResult]:
    """Figure 7: TPC-W response time under *fixed* load.

    The client count stays at the single-replica level (10/8/5 per mix)
    while replicas are added: replication now buys lower response time —
    except for EAGER on the ordering mix, where more replicas mean a larger
    global commit delay.
    """
    counts = _replica_counts(quick)
    results: dict[str, SeriesResult] = {}
    for mix in mixes:
        clients = TPCW_CLIENTS_PER_REPLICA[mix]
        series: dict[str, list[float]] = {level.label: [] for level in LEVELS}
        for n in counts:
            for level in LEVELS:
                run = _tpcw_run(mix, level, n, clients, quick, seed)
                series[level.label].append(run.response_ms)
        results[mix] = SeriesResult(
            title=f"Figure 7 — TPC-W {mix} mix response time (ms), fixed load",
            x_label="replicas",
            x_values=list(counts),
            series=series,
        )
    return results


# ---------------------------------------------------------------------------
# Overload protection (saturation sweep and retry storms)
# ---------------------------------------------------------------------------

@dataclass
class SaturationResult:
    """Offered-load sweep data: per-arm goodput / p99 / shed-rate curves."""

    title: str
    offered_tps: list[float]
    goodput: dict[str, list[float]]
    p99_ms: dict[str, list[float]]
    shed_rate: dict[str, list[float]]

    def render(self) -> str:
        return "\n\n".join(
            [
                format_series(
                    "offered tps", self.offered_tps, self.goodput,
                    title=f"{self.title} — goodput (committed TPS)",
                ),
                format_series(
                    "offered tps", self.offered_tps, self.p99_ms,
                    title=f"{self.title} — p99 response (ms)",
                ),
                format_series(
                    "offered tps", self.offered_tps, self.shed_rate,
                    title=f"{self.title} — shed fraction of offered load",
                    floatfmt="{:.3f}",
                ),
            ]
        )


def _saturation_point(
    protected: bool, offered_tps: float, quick: bool, seed: int
) -> tuple[float, float, float]:
    from ..core.cluster import ClusterConfig, ReplicatedDatabase
    from ..metrics.collector import MetricsCollector
    from ..workloads.clients import OpenLoopLoad

    warmup_ms = 500.0 if quick else 2_000.0
    measure_ms = 2_500.0 if quick else 10_000.0
    make = ClusterConfig.overload_protected if protected else ClusterConfig
    config = make(num_replicas=3, level=ConsistencyLevel.SC_FINE, seed=seed)
    cluster = ReplicatedDatabase(
        MicroBenchmark(update_types=10, rows_per_table=1_000), config
    )
    collector = MetricsCollector(
        measure_start=warmup_ms, measure_end=warmup_ms + measure_ms
    )
    load = OpenLoopLoad(
        cluster.env,
        cluster.network,
        cluster.workload,
        collector,
        rate_tps=offered_tps,
        rngs=cluster.rngs,
    )
    cluster.run(warmup_ms + measure_ms)
    summary = collector.summary()
    balancer = cluster.load_balancer
    shed = balancer.shed_count + balancer.deadline_shed_count
    shed_rate = shed / load.offered if load.offered else 0.0
    return summary.tps, summary.p99_response_ms, shed_rate


def saturation(
    quick: bool = True,
    seed: int = 0,
    loads: Optional[Sequence[float]] = None,
) -> SaturationResult:
    """Open-loop saturation sweep: protection off vs on.

    Closed-loop clients self-throttle, so saturation collapse is invisible
    to them; here an :class:`~repro.workloads.clients.OpenLoopLoad` offers
    transactions at a fixed Poisson rate regardless of completions.  The
    ``unprotected`` arm is the plain configuration — past the capacity knee
    its replica queues grow without bound and the p99 response time of what
    *does* complete diverges.  The ``protected`` arm runs
    :meth:`ClusterConfig.overload_protected` (MPL cap, bounded admission
    queues, deadline shedding, certifier backpressure): goodput holds at
    capacity, p99 stays flat, and the overflow shows up as explicit
    fast-rejects instead of latency.
    """
    if loads is None:
        # The 3-replica quick cluster's capacity knee sits near 3,500 tps;
        # the sweep brackets it from both sides.
        loads = (
            (800.0, 1_600.0, 3_200.0, 4_800.0)
            if quick
            else (800.0, 1_600.0, 2_400.0, 3_200.0, 4_000.0, 4_800.0, 6_400.0)
        )
    arms = {"unprotected": False, "protected": True}
    goodput: dict[str, list[float]] = {label: [] for label in arms}
    p99: dict[str, list[float]] = {label: [] for label in arms}
    shed: dict[str, list[float]] = {label: [] for label in arms}
    for offered in loads:
        for label, protected in arms.items():
            tps, p99_ms, shed_rate = _saturation_point(
                protected, float(offered), quick, seed
            )
            goodput[label].append(tps)
            p99[label].append(p99_ms)
            shed[label].append(shed_rate)
    return SaturationResult(
        title=(
            "Saturation — open-loop offered load, 3 replicas, 25% update mix"
        ),
        offered_tps=[float(x) for x in loads],
        goodput=goodput,
        p99_ms=p99,
        shed_rate=shed,
    )


@dataclass
class RetryStormResult:
    """Retry-storm (metastable failure) experiment data."""

    title: str
    bucket_ms: float
    spike_start_ms: float
    spike_end_ms: float
    #: per-arm goodput timeline: (bucket_start_ms, committed tps)
    timelines: dict[str, list[tuple[float, float]]]
    #: mean goodput before the spike / in the post-spike tail window
    baseline_tps: dict[str, float]
    tail_tps: dict[str, float]
    #: logical requests abandoned because the retry budget was exhausted
    budget_denied: dict[str, int]

    def recovered(self, label: str, fraction: float = 0.5) -> bool:
        """Did this arm's tail goodput return to ``fraction`` of baseline?"""
        base = self.baseline_tps.get(label, 0.0)
        return base > 0 and self.tail_tps.get(label, 0.0) >= fraction * base

    def render(self) -> str:
        header = (
            f"{'arm':>12} | {'baseline tps':>12} | {'tail tps':>9} | "
            f"{'tail/base':>9} | {'denied':>7} | verdict"
        )
        lines = [self.title, "", header, "-" * len(header)]
        for label in self.timelines:
            base = self.baseline_tps[label]
            tail = self.tail_tps[label]
            ratio = tail / base if base > 0 else 0.0
            verdict = "recovered" if self.recovered(label) else "collapsed"
            lines.append(
                f"{label:>12} | {base:12.0f} | {tail:9.0f} | "
                f"{ratio:8.0%} | {self.budget_denied[label]:7d} | {verdict}"
            )
        return "\n".join(lines)


def retry_storm(
    quick: bool = True,
    seed: int = 0,
    base_tps: float = 800.0,
    spike_tps: float = 8_000.0,
    bucket_ms: float = 250.0,
) -> RetryStormResult:
    """Metastable retry storm: a transient spike with and without budgets.

    The classic metastable-failure shape (Bronson et al., HotOS'21): clients
    retry on timeout, and work done for a timed-out request is wasted — the
    replica still executes it, but the balancer has already given up on the
    attempt.  A load spike pushes queueing delay past the request deadline;
    from then on every request costs ``max_attempts`` executions, so the
    *sustained* load stays far above capacity even after the spike ends and
    goodput never comes back.  That is the ``budget-off`` arm.  The
    ``budget-on`` arm is identical except for a client retry budget
    (token bucket refilled by successes): once successes dry up the budget
    denies retries, offered work falls back to the base rate, the backlog
    drains, and goodput recovers.

    Both arms run a read-only mix with a request deadline and no balancer
    re-dispatch (``max_attempts=1``), so retries are purely the clients'
    doing — the only difference between the arms is the budget.
    """
    from ..core.cluster import ClusterConfig, ReplicatedDatabase
    from ..metrics.collector import MetricsCollector
    from ..workloads.clients import OpenLoopLoad

    spike_start = 1_500.0 if quick else 4_000.0
    spike_ms = 1_000.0 if quick else 2_000.0
    tail_ms = 4_000.0 if quick else 12_000.0
    end = spike_start + spike_ms + tail_ms
    arms: dict[str, Optional[float]] = {"budget-off": None, "budget-on": 0.1}

    timelines: dict[str, list[tuple[float, float]]] = {}
    baseline: dict[str, float] = {}
    tail: dict[str, float] = {}
    denied: dict[str, int] = {}
    for label, ratio in arms.items():
        config = ClusterConfig(
            num_replicas=3,
            level=ConsistencyLevel.SC_FINE,
            seed=seed,
            request_deadline_ms=60.0,
            max_attempts=1,
        )
        cluster = ReplicatedDatabase(
            MicroBenchmark(update_types=0, rows_per_table=1_000), config
        )
        # A bounded window makes timeline() span the whole run even for an
        # arm whose goodput hits zero (zero buckets, not a truncated list).
        collector = MetricsCollector(measure_end=end)
        load = OpenLoopLoad(
            cluster.env,
            cluster.network,
            cluster.workload,
            collector,
            rate_tps=base_tps,
            rngs=cluster.rngs,
            retry_aborts=True,
            max_attempts=12,
            retry_budget_ratio=ratio,
            retry_backoff_cap_ms=40.0,
        )
        cluster.run(spike_start)
        load.set_rate(spike_tps)
        cluster.run(spike_start + spike_ms)
        load.set_rate(base_tps)
        cluster.run(end)

        timeline = collector.timeline(bucket_ms=bucket_ms)
        timelines[label] = timeline
        # Baseline skips the first 500 ms of warm-up transient; the tail is
        # the last third of the post-spike window.
        before = [
            tps
            for start, tps in timeline
            if start >= 500.0 and start + bucket_ms <= spike_start
        ]
        tail_window_start = end - tail_ms / 3.0
        after = [tps for start, tps in timeline if start >= tail_window_start]
        baseline[label] = sum(before) / len(before) if before else 0.0
        tail[label] = sum(after) / len(after) if after else 0.0
        denied[label] = load.budget_denied

    return RetryStormResult(
        title=(
            "Retry storm — open-loop spike "
            f"({base_tps:.0f} → {spike_tps:.0f} → {base_tps:.0f} tps), "
            "3 replicas, read-only mix, 60 ms deadline"
        ),
        bucket_ms=bucket_ms,
        spike_start_ms=spike_start,
        spike_end_ms=spike_start + spike_ms,
        timelines=timelines,
        baseline_tps=baseline,
        tail_tps=tail,
        budget_denied=denied,
    )
