"""The paper's experiments: one function per table/figure.

Every function regenerates the corresponding artifact's rows/series:

* :func:`table1` — Table I, database and table version maintenance;
* :func:`fig3`   — Figure 3, micro-benchmark throughput vs update mix;
* :func:`fig4`   — Figure 4, latency breakdown at 25 % / 100 % updates;
* :func:`fig5`   — Figure 5, TPC-W throughput and response time, scaled load;
* :func:`fig6`   — Figure 6, TPC-W synchronization delay, scaled load;
* :func:`fig7`   — Figure 7, TPC-W response time, fixed load.

``quick=True`` (the default, used by the pytest benches) shrinks the
warm-up/measurement windows and the sweep so a figure regenerates in tens of
seconds; ``quick=False`` runs the paper-scale sweep used for EXPERIMENTS.md.
Results from the TPC-W sweeps are cached per-process so Figures 5 and 6
share their runs, as they do in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..core.consistency import ConsistencyLevel
from ..core.policy import BoundedStalenessPolicy
from ..core.versions import VersionTracker
from ..metrics.report import format_breakdown, format_series, format_table
from ..metrics.stages import StageTimings
from ..workloads.microbench import MicroBenchmark
from ..workloads.tpcw import TPCWBenchmark
from .runner import ExperimentConfig, ExperimentResult, run_experiment

__all__ = [
    "LEVELS",
    "AvailabilityMeasurement",
    "AvailabilityResult",
    "SeriesResult",
    "BreakdownResult",
    "availability",
    "table1",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "bounded_staleness_sweep",
    "clear_cache",
]

#: the four configurations the paper evaluates, in its plotting order
LEVELS = (
    ConsistencyLevel.SC_COARSE,
    ConsistencyLevel.SC_FINE,
    ConsistencyLevel.SESSION,
    ConsistencyLevel.EAGER,
)

#: clients per replica for the scaled-load TPC-W experiments (Section V-C.1)
TPCW_CLIENTS_PER_REPLICA = {"browsing": 10, "shopping": 8, "ordering": 5}


@dataclass
class SeriesResult:
    """One figure's data: x-axis plus one series per configuration."""

    title: str
    x_label: str
    x_values: list
    series: dict[str, list[float]]

    def render(self, floatfmt: str = "{:.1f}", chart: bool = True) -> str:
        """The paper-style data table, optionally followed by an ASCII plot
        of the same series (the figure itself)."""
        table = format_series(
            self.x_label, self.x_values, self.series, title=self.title,
            floatfmt=floatfmt,
        )
        if not chart:
            return table
        from ..metrics.ascii_chart import line_chart

        plot = line_chart(
            [float(x) for x in self.x_values],
            self.series,
            x_label=self.x_label,
        )
        return table + "\n\n" + plot

    def value(self, label: str, x) -> float:
        """Convenience lookup: the series value at one x point."""
        return self.series[label][self.x_values.index(x)]


@dataclass
class BreakdownResult:
    """Figure-4 style data: per-configuration stage breakdowns."""

    title: str
    breakdowns: dict[str, StageTimings]
    read_only_breakdowns: dict[str, StageTimings] = field(default_factory=dict)

    def render(self) -> str:
        parts = [format_breakdown(self.breakdowns, title=self.title)]
        if self.read_only_breakdowns:
            parts.append(
                format_breakdown(
                    self.read_only_breakdowns,
                    title=f"{self.title} — read-only transactions",
                )
            )
        return "\n\n".join(parts)


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------

def table1() -> str:
    """Reproduce Table I: version maintenance for T1..T6 on tables A, B, C.

    Deterministic — exercises :class:`VersionTracker` exactly as the paper's
    walkthrough does, then shows the SC-FINE vs SC-COARSE start version for
    the final transaction T6 (which accesses table A only).
    """
    tracker = VersionTracker()
    transactions = [
        ("T1", {"A"}),
        ("T2", {"B", "C"}),
        ("T3", {"B"}),
        ("T4", {"C"}),
        ("T5", {"B", "C"}),
        ("T6", {"A"}),
    ]
    rows = []
    footer = ""
    for name, tables in transactions:
        if name == "T6":
            # The paper's punchline: T6 accesses table A only, so SC-FINE
            # lets it start at V_local >= V_A = 1 while SC-COARSE demands
            # the full V_system = 5.
            fine = tracker.start_version(ConsistencyLevel.SC_FINE, table_set=tables)
            coarse = tracker.start_version(ConsistencyLevel.SC_COARSE)
            footer = (
                f"\nT6 (table A only) start requirement: SC-FINE V_local >= {fine}, "
                f"SC-COARSE V_local >= {coarse}."
            )
        commit_version = tracker.v_system + 1
        tracker.observe_commit(commit_version, tables)
        rows.append(
            [
                name,
                ",".join(sorted(tables)),
                tracker.v_system,
                tracker.table_version("A"),
                tracker.table_version("B"),
                tracker.table_version("C"),
            ]
        )
    table = format_table(
        ["Transaction", "Updated tables", "V_system", "V_A", "V_B", "V_C"],
        rows,
        title="Table I — database and table versions",
    )
    return table + footer


# ---------------------------------------------------------------------------
# Micro-benchmark (Figures 3 and 4)
# ---------------------------------------------------------------------------

def _micro_config(
    level,
    update_types: int,
    quick: bool,
    seed: int,
    num_replicas: int = 8,
    clients: int = 8,
) -> ExperimentConfig:
    rows = 1_000 if quick else 10_000
    return ExperimentConfig(
        workload_factory=lambda: MicroBenchmark(
            update_types=update_types, rows_per_table=rows
        ),
        level=level,
        num_replicas=num_replicas,
        clients=clients,
        warmup_ms=1_000.0 if quick else 10_000.0,
        measure_ms=4_000.0 if quick else 30_000.0,
        seed=seed,
        label=f"micro-{update_types}/40-{level.label}",
    )


def fig3(
    quick: bool = True,
    seed: int = 0,
    update_types: Optional[Sequence[int]] = None,
) -> SeriesResult:
    """Figure 3: micro-benchmark throughput vs update mix, 8 replicas."""
    if update_types is None:
        update_types = (0, 10, 20, 30, 40) if quick else (0, 5, 10, 15, 20, 25, 30, 35, 40)
    series: dict[str, list[float]] = {level.label: [] for level in LEVELS}
    for count in update_types:
        for level in LEVELS:
            result = run_experiment(_micro_config(level, count, quick, seed))
            series[level.label].append(result.tps)
    return SeriesResult(
        title="Figure 3 — micro-benchmark throughput (TPS), 8 replicas",
        x_label="update%",
        x_values=[int(round(100 * c / 40)) for c in update_types],
        series=series,
    )


def fig4(quick: bool = True, seed: int = 0) -> dict[str, BreakdownResult]:
    """Figure 4: latency breakdown for the 25 % and 100 % update mixes."""
    results: dict[str, BreakdownResult] = {}
    for label, update_types in (("25% update mix", 10), ("100% update mix", 40)):
        update_breakdowns: dict[str, StageTimings] = {}
        read_breakdowns: dict[str, StageTimings] = {}
        for level in LEVELS:
            result = run_experiment(_micro_config(level, update_types, quick, seed))
            update_breakdowns[level.label] = result.summary.update_breakdown
            read_breakdowns[level.label] = result.summary.read_only_breakdown
        results[label] = BreakdownResult(
            title=f"Figure 4 — latency breakdown, {label} (update transactions, ms)",
            breakdowns=update_breakdowns,
            read_only_breakdowns=read_breakdowns,
        )
    return results


def bounded_staleness_sweep(
    quick: bool = True,
    seed: int = 0,
    bounds: Sequence[int] = (0, 1, 2, 5, 10),
    update_types: int = 10,
) -> SeriesResult:
    """Beyond the paper: the freshness/performance trade-off of the
    ``BOUNDED(k)`` policy on the micro-benchmark.

    Sweeps the staleness bound *k*: ``BOUNDED(0)`` coincides with SC-COARSE
    (full ``V_system`` synchronization), and growing *k* trades staleness
    for a shorter synchronization start delay.  One series per metric so the
    trade-off is visible in a single table.
    """
    tps: list[float] = []
    response: list[float] = []
    sync_delay: list[float] = []
    for bound in bounds:
        result = run_experiment(
            _micro_config(BoundedStalenessPolicy(bound), update_types, quick, seed)
        )
        tps.append(result.tps)
        response.append(result.response_ms)
        sync_delay.append(result.sync_delay_ms)
    return SeriesResult(
        title=(
            "Bounded staleness — micro-benchmark "
            f"({int(round(100 * update_types / 40))}% update mix), 8 replicas"
        ),
        x_label="staleness bound k",
        x_values=list(bounds),
        series={
            "TPS": tps,
            "response ms": response,
            "sync delay ms": sync_delay,
        },
    )


# ---------------------------------------------------------------------------
# TPC-W (Figures 5, 6 and 7)
# ---------------------------------------------------------------------------

_tpcw_cache: dict[tuple, ExperimentResult] = {}


def clear_cache() -> None:
    """Drop the per-process TPC-W result cache."""
    _tpcw_cache.clear()


# ---------------------------------------------------------------------------
# Availability under a replica crash (self-healing middleware)
# ---------------------------------------------------------------------------

@dataclass
class AvailabilityMeasurement:
    """What one level's crash experiment produced."""

    detection_latency_ms: float
    baseline_tps: float
    dip_tps: float
    recovery_ms: float  # math.inf when throughput never returned to 90 %

    @property
    def dip_depth_pct(self) -> float:
        if self.baseline_tps <= 0:
            return 0.0
        return 100.0 * (1.0 - self.dip_tps / self.baseline_tps)


@dataclass
class AvailabilityResult:
    """Availability experiment data: one measurement per configuration."""

    title: str
    measurements: dict[str, AvailabilityMeasurement]

    def render(self) -> str:
        header = (
            f"{'config':>10} | {'detect (ms)':>11} | {'baseline tps':>12} | "
            f"{'dip tps':>9} | {'dip depth':>9} | {'recover (ms)':>12}"
        )
        rows = [self.title, "", header, "-" * len(header)]
        for label, m in self.measurements.items():
            recover = (
                f"{m.recovery_ms:12.0f}" if math.isfinite(m.recovery_ms)
                else f"{'never':>12}"
            )
            rows.append(
                f"{label:>10} | {m.detection_latency_ms:11.1f} | "
                f"{m.baseline_tps:12.0f} | {m.dip_tps:9.0f} | "
                f"{m.dip_depth_pct:8.0f}% | {recover}"
            )
        return "\n".join(rows)


def availability(
    quick: bool = True,
    seed: int = 0,
    levels: Optional[Sequence[ConsistencyLevel]] = None,
    bucket_ms: float = 100.0,
) -> AvailabilityResult:
    """Availability around an injected replica crash, per configuration.

    A self-healing cluster (heartbeat detection, request deadlines, standby
    certifier) runs a mixed micro-benchmark; one replica crashes mid-run
    with **no oracle notification** — the middleware must detect it.  The
    experiment reports, per consistency level:

    * **detection latency** — crash until the balancer's monitor suspects;
    * **throughput dip** — the worst post-crash bucket vs the pre-crash
      baseline;
    * **time to recover** — crash until bucketed throughput is back at 90 %
      of the baseline.

    The interesting contrast is SC-FINE vs EAGER: the eager protocol keeps
    every update waiting on the dead replica until the certifier excludes
    it, so its dip is total; the lazy levels keep committing on the
    surviving replicas throughout.
    """
    from ..core.cluster import ClusterConfig, ReplicatedDatabase
    from ..faults.injector import FaultInjector
    from ..metrics.collector import MetricsCollector

    if levels is None:
        levels = (ConsistencyLevel.SC_FINE, ConsistencyLevel.EAGER)
    warmup_ms = 800.0 if quick else 3_000.0
    crash_after_ms = 1_200.0 if quick else 4_000.0
    observe_ms = 2_000.0 if quick else 6_000.0
    victim = "replica-1"

    measurements: dict[str, AvailabilityMeasurement] = {}
    for level in levels:
        config = ClusterConfig.self_healing(
            num_replicas=4, level=level, seed=seed
        )
        cluster = ReplicatedDatabase(
            MicroBenchmark(update_types=20, rows_per_table=1_000), config
        )
        collector = MetricsCollector(measure_start=warmup_ms)
        cluster.add_clients(12, collector, retry_aborts=True)
        injector = FaultInjector(cluster)

        cluster.run(warmup_ms + crash_after_ms)
        crash_at = cluster.env.now
        injector.crash_replica(victim)
        cluster.run(crash_at + observe_ms)

        monitor = cluster.load_balancer.monitor
        detection = monitor.suspect_times.get(victim, math.inf) - crash_at

        timeline = collector.timeline(bucket_ms=bucket_ms)
        before = [tps for start, tps in timeline if start + bucket_ms <= crash_at]
        after = [(start, tps) for start, tps in timeline if start >= crash_at]
        baseline = sum(before) / len(before) if before else 0.0
        dip = min((tps for _, tps in after), default=0.0)
        dip_index = next(
            (i for i, (_, tps) in enumerate(after) if tps == dip), 0
        )
        # Recovery is counted from the crash to the first bucket at or
        # after the worst one that is back above 90 % of the baseline.
        recovery = math.inf
        for start, tps in after[dip_index:]:
            if tps >= 0.9 * baseline:
                recovery = start + bucket_ms - crash_at
                break

        measurements[level.label] = AvailabilityMeasurement(
            detection_latency_ms=detection,
            baseline_tps=baseline,
            dip_tps=dip,
            recovery_ms=recovery,
        )

    return AvailabilityResult(
        title=(
            "Availability — replica crash with heartbeat detection "
            f"(4 replicas, 12 clients, crash at t={crash_after_ms:.0f}ms "
            "after warm-up)"
        ),
        measurements=measurements,
    )


def _tpcw_run(
    mix: str,
    level: ConsistencyLevel,
    num_replicas: int,
    clients: int,
    quick: bool,
    seed: int,
) -> ExperimentResult:
    key = (mix, level, num_replicas, clients, quick, seed)
    if key not in _tpcw_cache:
        scale = 1 if quick else 2
        config = ExperimentConfig(
            workload_factory=lambda: TPCWBenchmark(
                mix=mix,
                num_items=300 * scale,
                num_customers=200 * scale,
                num_authors=100 * scale,
            ),
            level=level,
            num_replicas=num_replicas,
            clients=clients,
            warmup_ms=3_000.0 if quick else 10_000.0,
            measure_ms=12_000.0 if quick else 40_000.0,
            seed=seed,
            label=f"tpcw-{mix}-{level.label}-{num_replicas}r",
        )
        _tpcw_cache[key] = run_experiment(config)
    return _tpcw_cache[key]


def _replica_counts(quick: bool) -> list[int]:
    return [1, 2, 4, 8] if quick else [1, 2, 3, 4, 5, 6, 7, 8]


def fig5(
    quick: bool = True,
    seed: int = 0,
    mixes: Sequence[str] = ("browsing", "shopping", "ordering"),
) -> dict[str, dict[str, SeriesResult]]:
    """Figure 5: TPC-W throughput and response time under scaled load.

    Returns ``{mix: {"throughput": SeriesResult, "response": SeriesResult}}``
    covering sub-figures (a)–(f).
    """
    counts = _replica_counts(quick)
    results: dict[str, dict[str, SeriesResult]] = {}
    for mix in mixes:
        per_replica = TPCW_CLIENTS_PER_REPLICA[mix]
        tps: dict[str, list[float]] = {level.label: [] for level in LEVELS}
        resp: dict[str, list[float]] = {level.label: [] for level in LEVELS}
        for n in counts:
            for level in LEVELS:
                run = _tpcw_run(mix, level, n, per_replica * n, quick, seed)
                tps[level.label].append(run.tps)
                resp[level.label].append(run.response_ms)
        results[mix] = {
            "throughput": SeriesResult(
                title=f"Figure 5 — TPC-W {mix} mix throughput (TPS), scaled load",
                x_label="replicas",
                x_values=list(counts),
                series=tps,
            ),
            "response": SeriesResult(
                title=f"Figure 5 — TPC-W {mix} mix response time (ms), scaled load",
                x_label="replicas",
                x_values=list(counts),
                series=resp,
            ),
        }
    return results


def fig6(
    quick: bool = True,
    seed: int = 0,
    mixes: Sequence[str] = ("shopping", "ordering"),
) -> dict[str, SeriesResult]:
    """Figure 6: TPC-W synchronization delay under scaled load.

    Synchronization delay is the synchronization *start* delay for
    SC-COARSE/SC-FINE/SESSION and the *global commit* delay for EAGER.
    Shares its runs with Figure 5.
    """
    counts = _replica_counts(quick)
    results: dict[str, SeriesResult] = {}
    for mix in mixes:
        per_replica = TPCW_CLIENTS_PER_REPLICA[mix]
        series: dict[str, list[float]] = {level.label: [] for level in LEVELS}
        for n in counts:
            for level in LEVELS:
                run = _tpcw_run(mix, level, n, per_replica * n, quick, seed)
                series[level.label].append(run.sync_delay_ms)
        results[mix] = SeriesResult(
            title=f"Figure 6 — TPC-W {mix} mix synchronization delay (ms)",
            x_label="replicas",
            x_values=list(counts),
            series=series,
        )
    return results


def fig7(
    quick: bool = True,
    seed: int = 0,
    mixes: Sequence[str] = ("shopping", "ordering"),
) -> dict[str, SeriesResult]:
    """Figure 7: TPC-W response time under *fixed* load.

    The client count stays at the single-replica level (10/8/5 per mix)
    while replicas are added: replication now buys lower response time —
    except for EAGER on the ordering mix, where more replicas mean a larger
    global commit delay.
    """
    counts = _replica_counts(quick)
    results: dict[str, SeriesResult] = {}
    for mix in mixes:
        clients = TPCW_CLIENTS_PER_REPLICA[mix]
        series: dict[str, list[float]] = {level.label: [] for level in LEVELS}
        for n in counts:
            for level in LEVELS:
                run = _tpcw_run(mix, level, n, clients, quick, seed)
                series[level.label].append(run.response_ms)
        results[mix] = SeriesResult(
            title=f"Figure 7 — TPC-W {mix} mix response time (ms), fixed load",
            x_label="replicas",
            x_values=list(counts),
            series=series,
        )
    return results
