"""Experiment harness: configs, runner, and the paper's figures/tables."""

from .experiments import (
    LEVELS,
    AvailabilityMeasurement,
    AvailabilityResult,
    BreakdownResult,
    SeriesResult,
    availability,
    clear_cache,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    table1,
)
from .runner import (
    ExperimentConfig,
    ExperimentResult,
    ReplicatedResult,
    run_experiment,
    run_replicated,
)

__all__ = [
    "LEVELS",
    "AvailabilityMeasurement",
    "AvailabilityResult",
    "availability",
    "BreakdownResult",
    "ExperimentConfig",
    "ExperimentResult",
    "ReplicatedResult",
    "SeriesResult",
    "clear_cache",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "run_experiment",
    "run_replicated",
    "table1",
]
