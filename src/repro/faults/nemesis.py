"""The nemesis — seeded background chaos against a live cluster.

Inspired by Jepsen's nemesis process: while a workload runs, a seeded
scheduler randomly crashes and recovers replicas, cuts and heals directed
network links, and (optionally, once) kills the certifier so the standby
must promote itself.  At the end of its window it heals every fault it
injected so the run can converge and be audited.

Safety envelope — the nemesis stays inside the failure model the
self-healing stack is designed for (and the docs are honest about):

* at most a **minority** of replicas is crashed at any time, so the replica
  electorate can always reach the promotion majority;
* links touching the **standby** are never cut (a single semi-synchronous
  standby cannot survive losing its shipping channel; quorum replication
  would be needed — see ``docs/PROTOCOL.md``);
* the certifier kill happens only when all replicas are up, so detection
  votes can actually assemble a majority.

Every injected fault is appended to :attr:`Nemesis.actions` as
``(virtual_time_ms, action, detail)`` for debugging failed audits: a seed
reproduces its schedule exactly.
"""

from __future__ import annotations

from typing import Optional

from ..core.cluster import ReplicatedDatabase
from ..sim.rng import Rng
from .injector import FaultInjector

__all__ = ["Nemesis"]


class Nemesis:
    """Seeded fault scheduler running as a simulation process."""

    def __init__(
        self,
        cluster: ReplicatedDatabase,
        rng: Rng,
        duration_ms: float,
        injector: Optional[FaultInjector] = None,
        mean_interval_ms: float = 150.0,
        fault_duration_ms: tuple[float, float] = (80.0, 400.0),
        kill_certifier: bool = False,
        certifier_kill_after_ms: float = 500.0,
        max_partitions: int = 2,
        overload_bursts: bool = False,
        overload_request_count: int = 40,
        corruption: bool = False,
        max_corruptions: int = 3,
        rolling_restart: bool = False,
    ):
        if duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        self.cluster = cluster
        self.rng = rng
        self.duration_ms = duration_ms
        self.injector = injector if injector is not None else FaultInjector(cluster)
        self.mean_interval_ms = mean_interval_ms
        self.fault_duration_ms = fault_duration_ms
        self.kill_certifier = kill_certifier
        self.certifier_kill_after_ms = certifier_kill_after_ms
        self.max_partitions = max_partitions
        #: include "overload" faults: a burst of synthetic read-only load
        #: straight at one replica (off by default so existing seeded
        #: schedules replay unchanged)
        self.overload_bursts = overload_bursts
        self.overload_request_count = overload_request_count
        #: include "corrupt" faults: silent divergence (bit rot, lost or
        #: doubled refresh applies) on one live replica — only meaningful
        #: against a cluster running the scrubber, and off by default so
        #: existing seeded schedules replay unchanged
        self.corruption = corruption
        self.max_corruptions = max_corruptions
        #: run the deterministic-shape rolling-restart script instead of the
        #: random schedule: serially crash-restart every replica (and hold
        #: one past the departed-grace purge + an explicit log truncation so
        #: it must return through a full bootstrap), awaiting each node's
        #: return to ``live`` before moving on.  Off by default so existing
        #: seeded schedules replay unchanged.
        self.rolling_restart = rolling_restart
        #: (virtual time, action, detail) — the reproducible fault schedule
        self.actions: list[tuple[float, str, str]] = []
        #: links currently cut by this nemesis: (sender, recipient, symmetric)
        self._cut_links: list[tuple[str, str, bool]] = []
        self.certifier_killed = False
        self.finished = False
        self._start = cluster.env.now
        self._process = cluster.env.process(self._run(), name="nemesis")

    # -- schedule ------------------------------------------------------------
    def _log(self, action: str, detail: str) -> None:
        self.actions.append((self.cluster.env.now, action, detail))

    def _majority_safe_to_crash(self) -> bool:
        total = len(self.cluster.replica_names)
        up_after = total - len(self.injector.crashed_replicas) - 1
        return 2 * up_after > total

    def _run(self):
        if self.rolling_restart:
            yield from self._run_rolling_restart()
            self._heal_everything()
            self.finished = True
            return
        env = self.cluster.env
        deadline = self._start + self.duration_ms
        while True:
            yield env.timeout(self.rng.exponential(self.mean_interval_ms))
            if env.now >= deadline:
                break
            self._inject_one()
        self._heal_everything()
        self.finished = True

    def _run_rolling_restart(self):
        """Serially crash-restart every replica under live load.

        One rng-chosen victim (when the cluster purges departed horizon
        pins and runs the bootstrap coordinator) is held down past the
        suspicion + grace window and the decision log is explicitly
        truncated past it — replay recovery becomes impossible and the
        replica must return through the full checkpoint bootstrap.  Every
        other victim restarts within its grace window and recovers by
        replay.  Each node must be back to ``live`` (certifier membership +
        balancer routing set, not joining, not quarantined) before the next
        is taken down, so a minority-crash envelope holds trivially.
        """
        env = self.cluster.env
        config = self.cluster.config
        names = list(self.cluster.replica_names)
        purge_target = None
        if config.departed_grace_ms is not None and self.cluster.bootstrap is not None:
            purge_target = names[self.rng.randint(0, len(names) - 1)]
        for name in names:
            yield env.timeout(self.rng.uniform(*self.fault_duration_ms))
            if not self._majority_safe_to_crash():
                self._log("rolling-skip", f"{name} (majority unsafe)")
                continue
            self.injector.crash_replica(name)
            self._log("rolling-crash", name)
            if name == purge_target:
                # Hold past detection + departed grace so the certifier
                # drops this replica's horizon pin, then truncate: the log
                # suffix the returnee would need is gone.
                interval = config.heartbeat_interval_ms or 20.0
                hold = (
                    (config.suspicion_threshold + 1) * interval
                    + config.departed_grace_ms
                    + 3 * interval
                )
                yield env.timeout(hold)
                dropped = self.cluster.certifier.truncate_log()
                self._log(
                    "rolling-purge",
                    f"{name} held {hold:.0f}ms, truncated {dropped} entries",
                )
            else:
                yield env.timeout(self.rng.uniform(*self.fault_duration_ms))
            self.injector.recover_replica(name)
            self._log("rolling-recover", name)
            yield from self._await_live(name)

    def _await_live(self, name: str, timeout_ms: float = 10_000.0):
        """Poll until ``name`` is fully back in rotation (or time out)."""
        env = self.cluster.env
        balancer = self.cluster.load_balancer
        deadline = env.now + timeout_ms
        while env.now < deadline:
            certifier = self.cluster.certifier
            if (
                name in certifier.replica_names
                and name in balancer.up_replicas
                and name not in balancer.joining_replicas
                and name not in balancer.quarantined_replicas
            ):
                self._log("rolling-live", name)
                return
            yield env.timeout(10.0)
        self._log("rolling-live-timeout", name)

    def _inject_one(self) -> None:
        choices = []
        if self._majority_safe_to_crash():
            choices.append("crash")
        if self.injector.crashed_replicas:
            choices.append("recover")
        if len(self._cut_links) < self.max_partitions:
            choices.append("partition")
        if self._cut_links:
            choices.append("heal")
        if self.overload_bursts and self.injector.surviving_replicas():
            choices.append("overload")
        if (
            self.corruption
            and len(self.injector.corruptions) < self.max_corruptions
            and self.injector.surviving_replicas()
        ):
            choices.append("corrupt")
        if (
            self.kill_certifier
            and not self.certifier_killed
            and self.cluster.standby is not None
            and not self.injector.crashed_replicas
            and self.cluster.env.now - self._start >= self.certifier_kill_after_ms
        ):
            choices.append("kill-certifier")
        if not choices:
            return
        action = self.rng.choice(choices)
        getattr(self, f"_do_{action.replace('-', '_')}")()

    def _do_crash(self) -> None:
        name = self.rng.choice(self.injector.surviving_replicas())
        self.injector.crash_replica(name)
        self._log("crash", name)
        self._schedule_heal("recover", name)

    def _do_recover(self) -> None:
        name = self.rng.choice(sorted(self.injector.crashed_replicas))
        self.injector.recover_replica(name)
        self._log("recover", name)

    def _do_partition(self) -> None:
        # One directed (or symmetric) link between a replica and either the
        # balancer or the live certifier; standby links are off-limits.
        replica = self.rng.choice(self.cluster.replica_names)
        peer = self.rng.choice(["lb", self.cluster.certifier.name])
        sender, recipient = (
            (replica, peer) if self.rng.random() < 0.5 else (peer, replica)
        )
        symmetric = self.rng.random() < 0.5
        self.injector.partition_link(sender, recipient, symmetric=symmetric)
        self._cut_links.append((sender, recipient, symmetric))
        arrow = "<->" if symmetric else "->"
        self._log("partition", f"{sender}{arrow}{recipient}")
        self._schedule_heal("heal-link", (sender, recipient, symmetric))

    def _do_heal(self) -> None:
        link = self._cut_links.pop(self.rng.randint(0, len(self._cut_links) - 1))
        self.injector.heal_link(link[0], link[1], symmetric=link[2])
        self._log("heal", f"{link[0]}->{link[1]}")

    def _do_overload(self) -> None:
        name = self.rng.choice(self.injector.surviving_replicas())
        sent = self.injector.overload(name, requests=self.overload_request_count)
        self._log("overload", f"{name} x{sent}")

    def _do_corrupt(self) -> None:
        name = self.rng.choice(self.injector.surviving_replicas())
        kind = self.rng.choice(["corrupt_row", "skip_refresh", "double_apply"])
        if kind == "corrupt_row":
            try:
                table, key = self.injector.corrupt_row(name)
            except ValueError:
                # No visible rows yet (workload barely started); skip the
                # tick rather than crash the schedule.
                self._log("corrupt-skipped", f"{name} (no visible rows)")
                return
            self._log("corrupt", f"{name} corrupt_row {table}:{key}")
        elif kind == "skip_refresh":
            self.injector.skip_refresh(name)
            self._log("corrupt", f"{name} skip_refresh")
        else:
            self.injector.double_apply_refresh(name)
            self._log("corrupt", f"{name} double_apply_refresh")

    def _do_kill_certifier(self) -> None:
        killed = self.injector.kill_certifier()
        self.certifier_killed = True
        self._log("kill-certifier", killed.name)

    def _schedule_heal(self, kind: str, target) -> None:
        """Bound every injected fault's lifetime so faults overlap but none
        lasts forever."""
        low, high = self.fault_duration_ms
        delay = self.rng.uniform(low, high)

        def _healer():
            yield self.cluster.env.timeout(delay)
            if kind == "recover":
                if target in self.injector.crashed_replicas:
                    self.injector.recover_replica(target)
                    self._log("recover", f"{target} (scheduled)")
            else:
                if target in self._cut_links:
                    self._cut_links.remove(target)
                    self.injector.heal_link(target[0], target[1], symmetric=target[2])
                    self._log("heal", f"{target[0]}->{target[1]} (scheduled)")

        self.cluster.env.process(_healer(), name=f"nemesis-heal-{kind}")

    def _heal_everything(self) -> None:
        """End of the chaos window: restore the cluster to a faultless state
        (the audit needs a converged end state)."""
        for link in list(self._cut_links):
            self._cut_links.remove(link)
            self.injector.heal_link(link[0], link[1], symmetric=link[2])
        self.injector.heal_all_links()
        for name in sorted(self.injector.crashed_replicas):
            self.injector.recover_replica(name)
        self._log("final-heal", "all links healed, all replicas recovered")
