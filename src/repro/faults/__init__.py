"""Fault injection: the crash-recovery failure model of Section IV, plus
the nemesis chaos harness exercising the self-healing middleware."""

from .injector import FaultInjector
from .nemesis import Nemesis

__all__ = ["FaultInjector", "Nemesis"]
