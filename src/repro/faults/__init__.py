"""Fault injection: the crash-recovery failure model of Section IV."""

from .injector import FaultInjector

__all__ = ["FaultInjector"]
