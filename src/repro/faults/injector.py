"""Fault injection under the crash-recovery failure model (Section IV).

The paper assumes hosts fail independently by crashing and subsequently
recover.  :class:`FaultInjector` drives that model against a running
cluster:

* **replica crash** — the replica loses its soft state (pending refresh
  writesets, active transactions); its durable database survives.  How the
  rest of the cluster reacts depends on the configuration: with heartbeats
  enabled (``heartbeat_interval_ms``) the injector only kills the process —
  the load balancer and certifier *detect* the failure through missed
  heartbeats and route around it, which is the honest model (detection
  latency becomes measurable).  Without heartbeats, the injector plays
  oracle and notifies them directly, as before.
* **replica recovery** — the replica rejoins, asks the certifier to replay
  the decisions it missed (the certifier's durable log is the recovery
  source, per the Tashkent design the paper adopts), catches up through the
  normal refresh-application path and resumes serving.
* **link partition** — cut/heal directed network links (asymmetric
  partitions); see :class:`~repro.sim.network.Network`.
* **certifier kill / failover** — :meth:`kill_certifier` crash-stops the
  certifier and lets the configured standby promote itself;
  :meth:`failover_certifier` performs the manual, instantaneous failover
  through the certifier's public state-transfer API.
"""

from __future__ import annotations

from ..core.cluster import ReplicatedDatabase
from ..middleware.certifier import Certifier
from ..middleware.messages import ClientRequest, RoutedRequest, next_request_id
from ..middleware.perfmodel import CertifierPerformance

__all__ = ["FaultInjector"]


class FaultInjector:
    """Crash, partition and recover components of a live cluster."""

    def __init__(self, cluster: ReplicatedDatabase):
        self.cluster = cluster
        self.crashed_replicas: set[str] = set()
        self._failover_count = 0
        #: corruption injections, for the anti-entropy audits:
        #: ``(time, kind, replica, detail)`` tuples
        self.corruptions: list[tuple] = []

    # -- helpers -------------------------------------------------------------
    @property
    def detection_enabled(self) -> bool:
        """True when the cluster runs heartbeat failure detection — the
        injector then never tells anyone about a fault; the middleware has
        to notice on its own."""
        return self.cluster.config.heartbeat_interval_ms is not None

    def _check_replica(self, name: str) -> None:
        if name not in self.cluster.replicas:
            known = ", ".join(sorted(self.cluster.replicas))
            raise ValueError(f"unknown replica {name!r}; known replicas: {known}")

    # -- replica faults ------------------------------------------------------
    def crash_replica(self, name: str, exclude_from_membership: bool = True) -> None:
        """Crash one replica.

        With heartbeats enabled only the crash itself happens here; the
        balancer and certifier find out through missed heartbeats.  Without
        them, ``exclude_from_membership=False`` leaves the dead replica in
        the certifier's view — under EAGER, update transactions then block
        until the replica recovers, reproducing the eager approach's
        availability problem.
        """
        self._check_replica(name)
        if name in self.crashed_replicas:
            raise ValueError(f"replica {name!r} is already crashed")
        proxy = self.cluster.replicas[name]
        self.cluster.network.take_down(name)
        proxy.crash()
        if not self.detection_enabled:
            self.cluster.load_balancer.replica_down(name)
            if exclude_from_membership:
                self.cluster.certifier.remove_replica(name)
        self.crashed_replicas.add(name)

    def recover_replica(self, name: str) -> None:
        """Recover a crashed replica: rejoin and replay the certifier's log
        from the replica's durable version.

        The :class:`~repro.middleware.messages.RecoveryRequest` the replica
        sends re-admits it at the certifier; with heartbeats the balancer
        resumes routing on the first answered ping, otherwise the injector
        re-admits it directly.
        """
        self._check_replica(name)
        if name not in self.crashed_replicas:
            raise ValueError(f"replica {name!r} is not crashed")
        proxy = self.cluster.replicas[name]
        if not self.detection_enabled:
            self.cluster.certifier.add_replica(name, applied_version=proxy.engine.version)
        proxy.recover()
        if not self.detection_enabled:
            self.cluster.load_balancer.replica_up(name)
        self.crashed_replicas.discard(name)

    def surviving_replicas(self) -> list[str]:
        """Names of replicas currently up."""
        return [
            name
            for name in self.cluster.replica_names
            if name not in self.crashed_replicas
        ]

    # -- overload --------------------------------------------------------------
    def overload(self, name: str, requests: int = 50, read_only: bool = True) -> int:
        """Burst of synthetic client load straight at one replica proxy.

        The burst bypasses the load balancer's admission control — that is
        the point: it models a hot spot (or a misrouted flood) the balancer
        did not meter, and the safety audits must stay green while the
        replica sheds or absorbs it.  Calls are drawn from the cluster's own
        workload under a dedicated RNG stream (reproducible, and never
        perturbs client streams); with ``read_only`` (the default) only
        read-only templates are used, so the burst consumes replica CPU
        without touching certification or the commit history.  Responses go
        to the balancer, which drops them as unknown request ids.

        Returns the number of requests actually sent.
        """
        self._check_replica(name)
        if requests < 1:
            raise ValueError("requests must be >= 1")
        rng = self.cluster.rngs.stream("injector:overload")
        workload = self.cluster.workload
        catalog = workload.catalog()
        want_read_only = read_only and any(not t.is_update for t in catalog)
        session = f"overload-{name}"
        sent = 0
        while sent < requests:
            call = workload.next_call(session, rng)
            template = catalog.get(call.template)
            if want_read_only and (template is None or template.is_update):
                continue
            request = ClientRequest(
                request_id=next_request_id(),
                template=call.template,
                params=call.params,
                session_id=session,
                reply_to=self.cluster.load_balancer.name,
                submit_time=self.cluster.env.now,
            )
            self.cluster.network.send(
                self.cluster.load_balancer.name, name, RoutedRequest(request, 0)
            )
            sent += 1
        return sent

    # -- silent corruption (anti-entropy faults) -------------------------------
    def corrupt_row(self, name: str, table: str = None, key=None) -> tuple:
        """Bit rot: scramble one visible row image in place on one replica,
        beneath the incremental digest bookkeeping.

        With ``table``/``key`` unset, a target is drawn from the dedicated
        ``injector:corruption`` stream (reproducible; never perturbs client
        streams).  Only a *deep* scrub can see this fault.  Returns the
        ``(table, key)`` actually corrupted.
        """
        self._check_replica(name)
        if name in self.crashed_replicas:
            raise ValueError(f"replica {name!r} is crashed; corrupt a live one")
        db = self.cluster.replicas[name].engine.database
        rng = self.cluster.rngs.stream("injector:corruption")
        if table is None:
            candidates = [
                t for t in db.table_names
                if any(not d for _k, _v, _lcv, d in db.table(t).latest_states())
            ]
            if not candidates:
                raise ValueError(f"replica {name!r} holds no visible rows")
            table = rng.choice(sorted(candidates))
        if key is None:
            keys = [
                k for k, _v, _lcv, deleted in db.table(table).latest_states()
                if not deleted
            ]
            if not keys:
                raise ValueError(f"table {table!r} holds no visible rows")
            key = rng.choice(keys)
        if not db.corrupt_row_in_place(table, key):
            raise ValueError(f"no visible image at {table!r}:{key!r}")
        self.corruptions.append(
            (self.cluster.env.now, "corrupt_row", name, (table, key))
        )
        return table, key

    def skip_refresh(self, name: str) -> None:
        """Lost apply: the replica's next refresh advances its version
        bookkeeping but installs no rows — it silently believes it applied
        the writeset.  Detected by any scrub (the digests miss the ops)."""
        self._check_replica(name)
        if name in self.crashed_replicas:
            raise ValueError(f"replica {name!r} is crashed; corrupt a live one")
        self.cluster.replicas[name]._corrupt_next_refresh = "skip"
        self.corruptions.append((self.cluster.env.now, "skip_refresh", name, None))

    def double_apply_refresh(self, name: str) -> None:
        """Non-idempotent double application: the replica's next refresh
        applies normally, then each written row's numeric deltas fold in a
        second time in place.  Only a *deep* scrub can see this fault (the
        incremental digest saw one clean apply)."""
        self._check_replica(name)
        if name in self.crashed_replicas:
            raise ValueError(f"replica {name!r} is crashed; corrupt a live one")
        self.cluster.replicas[name]._corrupt_next_refresh = "double"
        self.corruptions.append(
            (self.cluster.env.now, "double_apply_refresh", name, None)
        )

    # -- link partitions -------------------------------------------------------
    def partition_link(self, sender: str, recipient: str, symmetric: bool = False) -> None:
        """Cut the directed link ``sender → recipient`` (both directions when
        ``symmetric``); in-flight messages on the link are lost."""
        self.cluster.network.partition_link(sender, recipient, symmetric=symmetric)

    def heal_link(self, sender: str, recipient: str, symmetric: bool = False) -> None:
        """Restore a previously cut link."""
        self.cluster.network.heal_link(sender, recipient, symmetric=symmetric)

    def heal_all_links(self) -> None:
        """Restore every cut link."""
        self.cluster.network.heal_all_links()

    # -- certifier faults ------------------------------------------------------
    def kill_certifier(self) -> Certifier:
        """Crash-stop the live certifier and let the cluster heal itself.

        Requires a configured standby for the cluster to make progress
        again: proxies vote the certifier suspected once their heartbeats
        time out, and the standby promotes itself on a majority.  Returns
        the killed certifier (for inspecting its final log).
        """
        certifier = self.cluster.certifier
        self.cluster.network.take_down(certifier.name)
        certifier.halt()
        return certifier

    def failover_certifier(self) -> Certifier:
        """Manual, instantaneous failover: crash the certifier and promote a
        cold copy initialised through the public state-transfer API
        (:meth:`~repro.middleware.certifier.Certifier.snapshot_state` /
        ``restore_state`` plus a decision-log clone).

        This models an operator-driven switchover with perfect state
        transfer; :meth:`kill_certifier` plus a standby models the
        self-healing path with real detection and shipping delays.  Don't
        combine it with a configured standby — the standby would promote a
        second successor.
        """
        old = self.cluster.certifier
        self.cluster.network.take_down(old.name)
        old.halt()  # crash-stop: in-flight certifications decide nothing

        self._failover_count += 1
        new_name = f"certifier-standby-{self._failover_count}"
        successor = Certifier(
            env=self.cluster.env,
            network=self.cluster.network,
            perf=CertifierPerformance(
                self.cluster.params,
                self.cluster.rngs.stream(f"perf:{new_name}"),
            ),
            replica_names=list(old.replica_names),
            level=old.policy,
            name=new_name,
            log=old.log.clone(),
            heartbeat=self.cluster.config.heartbeat_settings,
            epoch=old.epoch + 1,
        )
        successor.restore_state(old.snapshot_state())

        for proxy in self.cluster.replicas.values():
            if proxy.monitor is not None:
                proxy.monitor.replace_target(proxy.certifier_name, new_name)
            proxy.certifier_name = new_name
            proxy.certifier_epoch = successor.epoch
            proxy.fail_pending_certifications("certifier failover")
        balancer = self.cluster.load_balancer
        balancer.certifier_name = new_name
        balancer._certifier_epoch = successor.epoch
        self.cluster.certifier = successor
        return successor
