"""Fault injection under the crash-recovery failure model (Section IV).

The paper assumes hosts fail independently by crashing and subsequently
recover.  :class:`FaultInjector` drives that model against a running
cluster:

* **replica crash** — the replica loses its soft state (pending refresh
  writesets, active transactions); its durable database survives.  The load
  balancer stops routing to it and fails its in-flight requests; the
  certifier can exclude it from propagation and EAGER counting (without the
  exclusion, EAGER blocks on the dead replica — the availability weakness of
  the eager approach, which the tests demonstrate).
* **replica recovery** — the replica rejoins, asks the certifier to replay
  the decisions it missed (the certifier's durable log is the recovery
  source, per the Tashkent design the paper adopts), catches up through the
  normal refresh-application path and resumes serving.
* **certifier failover** — the certifier is deterministic and lightweight,
  so it is replicated for availability with the state-machine approach: the
  standby holds a copy of the decision log and takes over the certifier
  role; proxies re-point to it and in-flight certifications abort cleanly.
"""

from __future__ import annotations

from typing import Optional

from ..core.cluster import ReplicatedDatabase
from ..middleware.certifier import Certifier
from ..middleware.durability import DecisionLog
from ..middleware.perfmodel import CertifierPerformance

__all__ = ["FaultInjector"]


class FaultInjector:
    """Crash and recover components of a live cluster."""

    def __init__(self, cluster: ReplicatedDatabase):
        self.cluster = cluster
        self.crashed_replicas: set[str] = set()
        self._failover_count = 0

    # -- replica faults ------------------------------------------------------
    def crash_replica(self, name: str, exclude_from_membership: bool = True) -> None:
        """Crash one replica.

        ``exclude_from_membership=False`` leaves the dead replica in the
        certifier's view — under EAGER, update transactions then block until
        the replica recovers, reproducing the eager approach's availability
        problem.
        """
        if name in self.crashed_replicas:
            raise ValueError(f"replica {name!r} is already crashed")
        proxy = self.cluster.replicas[name]
        self.cluster.network.take_down(name)
        proxy.crash()
        self.cluster.load_balancer.replica_down(name)
        if exclude_from_membership:
            self.cluster.certifier.remove_replica(name)
        self.crashed_replicas.add(name)

    def recover_replica(self, name: str) -> None:
        """Recover a crashed replica: rejoin membership and replay the
        certifier's log from the replica's durable version."""
        if name not in self.crashed_replicas:
            raise ValueError(f"replica {name!r} is not crashed")
        proxy = self.cluster.replicas[name]
        self.cluster.certifier.add_replica(name, applied_version=proxy.engine.version)
        proxy.recover()
        self.cluster.load_balancer.replica_up(name)
        self.crashed_replicas.discard(name)

    def surviving_replicas(self) -> list[str]:
        """Names of replicas currently up."""
        return [
            name
            for name in self.cluster.replica_names
            if name not in self.crashed_replicas
        ]

    # -- certifier failover ----------------------------------------------------
    def failover_certifier(self) -> Certifier:
        """Crash the certifier and promote a standby.

        The standby is initialised from a copy of the decision log (state
        machine replication: the certifier is deterministic, so replaying
        the decision sequence reconstructs its exact state).  Proxies
        re-point to the standby; certifications in flight at the old
        certifier abort cleanly at their origin replicas.
        """
        old = self.cluster.certifier
        self.cluster.network.take_down(old.name)
        old.halt()  # crash-stop: in-flight certifications decide nothing

        self._failover_count += 1
        new_name = f"certifier-standby-{self._failover_count}"
        standby_log = old.log.clone()
        standby = Certifier(
            env=self.cluster.env,
            network=self.cluster.network,
            perf=CertifierPerformance(
                self.cluster.params,
                self.cluster.rngs.stream(f"perf:{new_name}"),
            ),
            replica_names=list(old.replica_names),
            level=old.policy,
            name=new_name,
            log=standby_log,
        )
        standby.applied_versions.update(old.applied_versions)
        standby._departed_versions.update(old._departed_versions)

        for proxy in self.cluster.replicas.values():
            proxy.certifier_name = new_name
            proxy.fail_pending_certifications("certifier failover")
        self.cluster.certifier = standby
        return standby
