"""Consistency checkers over recorded run histories.

These checkers decide, from a :class:`~repro.histories.records.RunHistory`,
whether an actual run of the replicated system satisfied:

* **strong consistency** (Definition 1) — for every pair of committed
  transactions where T_i was *acknowledged* before T_j was *submitted*
  (the only "commits before starts" order clients and hidden channels can
  observe), T_j's snapshot must include T_i's commit.

  Two variants:

  - the **observational** check only requires it when T_i updated a table
    T_j can access — this is the guarantee the fine-grained technique
    provides, and it is all a client can ever observe (a transaction cannot
    witness staleness of tables it never reads);
  - the **strict** check requires the full snapshot to be fresh regardless
    of table-sets — SC-COARSE and EAGER satisfy it; SC-FINE intentionally
    may not, while remaining observationally strongly consistent.

* **session consistency** (Definition 2) — the same implication restricted
  to pairs within one session, regardless of tables (a client always sees
  its own updates).  Snapshot monotonicity within a session ("never goes
  back in time", per [12]) is checked separately by
  :func:`session_monotonicity_violations`.

Each violation pinpoints the offending pair, which makes test failures and
the consistency-audit example self-explanatory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .records import RunHistory, TxnRecord

__all__ = [
    "Violation",
    "strong_consistency_violations",
    "session_consistency_violations",
    "session_monotonicity_violations",
    "is_strongly_consistent",
    "is_session_consistent",
    "staleness_report",
]


@dataclass(frozen=True)
class Violation:
    """One broken guarantee: ``later`` failed to observe ``earlier``."""

    kind: str
    earlier: TxnRecord
    later: TxnRecord
    detail: str

    def __str__(self) -> str:
        return (
            f"[{self.kind}] txn {self.later.request_id} "
            f"(session {self.later.session_id}, snapshot v{self.later.snapshot_version}) "
            f"missed commit v{self.earlier.commit_version} of txn "
            f"{self.earlier.request_id}: {self.detail}"
        )


def strong_consistency_violations(
    history: RunHistory, observational: bool = True
) -> list[Violation]:
    """All strong-consistency violations in the run.

    A committed update T_i constrains a committed T_j when
    ``ack(T_i) < submit(T_j)``.  With ``observational=True`` the constraint
    applies only when T_i wrote a table in T_j's table-set.
    """
    committed = sorted(history.committed(), key=lambda r: r.submit_time)
    updates = sorted(
        (r for r in committed if r.is_update), key=lambda r: r.ack_time
    )
    violations: list[Violation] = []
    # Sweep: process acknowledgments in time order, maintaining the
    # highest-version acknowledged update globally and per table.
    table_max: dict[str, TxnRecord] = {}
    global_max: Optional[TxnRecord] = None
    i = 0
    for later in committed:
        while i < len(updates) and updates[i].ack_time < later.submit_time:
            update = updates[i]
            if global_max is None or update.commit_version > global_max.commit_version:
                global_max = update
            for table in update.updated_tables:
                current = table_max.get(table)
                if current is None or update.commit_version > current.commit_version:
                    table_max[table] = update
            i += 1
        if observational:
            relevant: Optional[TxnRecord] = None
            for table in later.accessed_tables:
                candidate = table_max.get(table)
                if candidate is not None and (
                    relevant is None
                    or candidate.commit_version > relevant.commit_version
                ):
                    relevant = candidate
        else:
            relevant = global_max
        if relevant is not None and later.snapshot_version < relevant.commit_version:
            kind = "strong" if observational else "strong-strict"
            violations.append(
                Violation(
                    kind,
                    relevant,
                    later,
                    f"acknowledged at t={relevant.ack_time:.3f}, submitted at "
                    f"t={later.submit_time:.3f}, snapshot v{later.snapshot_version} "
                    f"< required v{relevant.commit_version}",
                )
            )
    return violations


def session_consistency_violations(
    history: RunHistory, observational: bool = False
) -> list[Violation]:
    """All session-consistency violations (Definition 2) in the run.

    Within each session, a transaction must observe every update the
    session previously committed and was acknowledged for.

    With ``observational=True`` the constraint applies only when the
    earlier update wrote a table the later transaction can access — the
    variant a client can actually witness.  The SESSION configuration
    satisfies the strict form; SC-FINE satisfies the observational form
    (the paper's Section III-C argument that fine-grained is *stronger*
    than session consistency refers to observable behaviour).

    Snapshot *monotonicity* (the "never goes back in time" session
    guarantee of [12]) is a separate, stronger property — see
    :func:`session_monotonicity_violations`.
    """
    violations: list[Violation] = []
    for _session, records in history.sessions().items():
        committed = sorted(
            (r for r in records if r.committed), key=lambda r: r.submit_time
        )
        updates = sorted(
            (r for r in committed if r.is_update), key=lambda r: r.ack_time
        )
        # Sweep acknowledgments in time order, as in the strong checker:
        # "T_i commits before T_j starts" means ack(T_i) < submit(T_j) even
        # within one session (a session may pipeline requests in general).
        table_last: dict[str, TxnRecord] = {}
        last_update: Optional[TxnRecord] = None
        i = 0
        for record in committed:
            while i < len(updates) and updates[i].ack_time < record.submit_time:
                update = updates[i]
                if last_update is None or update.commit_version > last_update.commit_version:
                    last_update = update
                for table in update.updated_tables:
                    current = table_last.get(table)
                    if current is None or update.commit_version > current.commit_version:
                        table_last[table] = update
                i += 1
            if observational:
                constraint: Optional[TxnRecord] = None
                for table in record.accessed_tables:
                    candidate = table_last.get(table)
                    if candidate is not None and (
                        constraint is None
                        or candidate.commit_version > constraint.commit_version
                    ):
                        constraint = candidate
            else:
                constraint = last_update
            if constraint is not None and record.snapshot_version < constraint.commit_version:
                violations.append(
                    Violation(
                        "session",
                        constraint,
                        record,
                        "transaction missed its own session's last update",
                    )
                )
    return violations


def session_monotonicity_violations(history: RunHistory) -> list[Violation]:
    """Monotonic-snapshot violations within sessions.

    For each session, snapshot versions must be non-decreasing in submit
    order ("successive transactions receive snapshots that never go back in
    time").  The SESSION configuration guarantees this by construction (the
    balancer tracks the last ``V_local`` each session observed); the strong
    configurations do *not* — a replica running ahead of ``V_system`` may
    serve a fresher snapshot than the next replica is required to reach.
    """
    violations: list[Violation] = []
    for _session, records in history.sessions().items():
        previous: Optional[TxnRecord] = None
        for record in records:
            if not record.committed:
                continue
            if previous is not None and record.snapshot_version < previous.snapshot_version:
                violations.append(
                    Violation(
                        "session-monotonicity",
                        previous,
                        record,
                        f"snapshot went back in time: v{record.snapshot_version} "
                        f"< v{previous.snapshot_version}",
                    )
                )
            previous = record
    return violations


def is_strongly_consistent(history: RunHistory, observational: bool = True) -> bool:
    """True when the run satisfied strong consistency (Definition 1)."""
    return not strong_consistency_violations(history, observational)


def is_session_consistent(history: RunHistory, observational: bool = False) -> bool:
    """True when the run satisfied session consistency (Definition 2)."""
    return not session_consistency_violations(history, observational)


def staleness_report(history: RunHistory) -> dict[str, float]:
    """How stale the snapshots were, in versions.

    For each committed transaction: (latest commit version acknowledged
    system-wide before its submit) − (its snapshot version), clamped at 0.
    Returns count, mean, and max — a quantitative view of the consistency
    gap that the BASELINE configuration exposes and the strong
    configurations close.
    """
    committed = sorted(history.committed(), key=lambda r: r.submit_time)
    updates = sorted((r for r in committed if r.is_update), key=lambda r: r.ack_time)
    staleness: list[int] = []
    required = 0
    i = 0
    for later in committed:
        while i < len(updates) and updates[i].ack_time < later.submit_time:
            required = max(required, updates[i].commit_version)
            i += 1
        staleness.append(max(0, required - later.snapshot_version))
    if not staleness:
        return {"count": 0, "mean": 0.0, "max": 0.0}
    return {
        "count": len(staleness),
        "mean": sum(staleness) / len(staleness),
        "max": float(max(staleness)),
    }
