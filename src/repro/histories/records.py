"""Run histories: what the replicated system externally did.

A :class:`RunHistory` records one :class:`TxnRecord` per finished client
transaction — submit time, acknowledgment time, the snapshot it read, the
version it committed at, and the tables it could access.  The consistency
checkers in :mod:`repro.histories.checkers` analyse these records to decide
whether a run was strongly consistent / session consistent, which is how the
test suite demonstrates that the lazy techniques actually deliver the
guarantee (and that the weak baseline does not).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["TxnRecord", "RunHistory"]


@dataclass(frozen=True)
class TxnRecord:
    """Externally visible facts about one finished client transaction.

    ``submit_time`` is when the client handed the request to the load
    balancer; ``ack_time`` is when the load balancer relayed the outcome
    back.  In the strong-consistency definition, "T_i commits before T_j
    starts" means ``ack_time(T_i) < submit_time(T_j)`` — the only ordering a
    client (or a hidden channel between clients) can observe.

    ``accessed_tables`` is the transaction's static table-set (from its
    template); ``updated_tables`` the tables its writeset actually wrote.
    """

    request_id: int
    template: str
    session_id: str
    replica: str
    submit_time: float
    ack_time: float
    committed: bool
    snapshot_version: int
    commit_version: Optional[int]
    accessed_tables: frozenset[str]
    updated_tables: frozenset[str]
    abort_reason: Optional[str] = None

    @property
    def is_update(self) -> bool:
        """True when the transaction committed a writeset."""
        return self.committed and self.commit_version is not None


class RunHistory:
    """Ordered collection of transaction records from one run."""

    def __init__(self):
        self._records: list[TxnRecord] = []

    def add(self, record: TxnRecord) -> None:
        """Record one finished transaction."""
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    @property
    def records(self) -> tuple[TxnRecord, ...]:
        return tuple(self._records)

    def committed(self) -> list[TxnRecord]:
        """Only the committed transactions, ordered by acknowledgment."""
        return sorted(
            (r for r in self._records if r.committed), key=lambda r: r.ack_time
        )

    def updates(self) -> list[TxnRecord]:
        """Committed update transactions, ordered by commit version."""
        return sorted(
            (r for r in self._records if r.is_update),
            key=lambda r: r.commit_version,
        )

    def aborted(self) -> list[TxnRecord]:
        """The aborted transactions."""
        return [r for r in self._records if not r.committed]

    def sessions(self) -> dict[str, list[TxnRecord]]:
        """Records grouped by session, each ordered by submit time."""
        by_session: dict[str, list[TxnRecord]] = {}
        for record in self._records:
            by_session.setdefault(record.session_id, []).append(record)
        for records in by_session.values():
            records.sort(key=lambda r: r.submit_time)
        return by_session
