"""The paper's example histories H1, H2 and H3 (Section II).

Two transactions execute on two distinct replicas:

* **H1** — T2 starts before T1's update of X reaches its replica and reads
  the old value.  Serializable (equivalent serial history {T2, T1}) but
  *not* strongly consistent: the clients submitted T1 first.
* **H2** — the strongly consistent execution: the replica is updated with
  T1's effects before T2 starts, so T2 reads the latest value.  Equivalent
  to the serial history {T1, T2}.
* **H3** — classic write skew: both transactions read the latest values of
  X and Y, so the history is strongly consistent and snapshot isolated, but
  it is *not* serializable.
"""

from __future__ import annotations

from .abstract import AbstractHistory, begin, commit, read, write

__all__ = ["h1", "h2", "h3"]


def h1() -> AbstractHistory:
    """H1 = {B1, W1(X=1), C1, B2, R2(X=0), C2}"""
    return AbstractHistory(
        [
            begin("T1"),
            write("T1", "X", 1),
            commit("T1"),
            begin("T2"),
            read("T2", "X", 0),
            commit("T2"),
        ]
    )


def h2() -> AbstractHistory:
    """H2 = {B1, W1(X=1), C1, B2, R2(X=1), C2}"""
    return AbstractHistory(
        [
            begin("T1"),
            write("T1", "X", 1),
            commit("T1"),
            begin("T2"),
            read("T2", "X", 1),
            commit("T2"),
        ]
    )


def h3() -> AbstractHistory:
    """H3 = {B1, R1(X=0), R1(Y=0), B2, R2(X=0), R2(Y=0), W1(X=1), W2(Y=1),
    C1, C2}"""
    return AbstractHistory(
        [
            begin("T1"),
            read("T1", "X", 0),
            read("T1", "Y", 0),
            begin("T2"),
            read("T2", "X", 0),
            read("T2", "Y", 0),
            write("T1", "X", 1),
            write("T2", "Y", 1),
            commit("T1"),
            commit("T2"),
        ]
    )
