"""Histories and consistency checking.

Run histories record what the replicated system externally did; the checkers
decide whether a run satisfied strong consistency (Definition 1), session
consistency (Definition 2), and related properties.  The ``abstract`` module
provides operation-level histories and isolation checkers; ``examples``
reproduces the paper's H1/H2/H3 from Section II.
"""

from .abstract import (
    AbstractHistory,
    Op,
    OpKind,
    abort,
    begin,
    commit,
    is_conflict_serializable,
    is_snapshot_isolated,
    is_strongly_consistent as is_abstract_strongly_consistent,
    read,
    strong_consistency_violations as abstract_strong_consistency_violations,
    write,
)
from .checkers import (
    Violation,
    is_session_consistent,
    is_strongly_consistent,
    session_consistency_violations,
    session_monotonicity_violations,
    staleness_report,
    strong_consistency_violations,
)
from .generator import interleaved_history, serial_history
from .records import RunHistory, TxnRecord

__all__ = [
    "AbstractHistory",
    "Op",
    "OpKind",
    "RunHistory",
    "TxnRecord",
    "Violation",
    "abort",
    "abstract_strong_consistency_violations",
    "begin",
    "commit",
    "is_abstract_strongly_consistent",
    "is_conflict_serializable",
    "is_session_consistent",
    "is_snapshot_isolated",
    "interleaved_history",
    "is_strongly_consistent",
    "read",
    "serial_history",
    "session_consistency_violations",
    "session_monotonicity_violations",
    "staleness_report",
    "strong_consistency_violations",
    "write",
]
