"""Abstract transaction histories (Section II of the paper).

A history is a sequence of operations — ``B_i``, ``R_i(X)=v``, ``W_i(X)=v``,
``C_i``, ``A_i`` — over uniquely identified data items.  This module gives
those histories a concrete form plus the checkers the paper's discussion
relies on:

* **strong consistency** (Definition 1): every transaction reads the latest
  committed state as of its begin;
* **conflict-serializability**: acyclic conflict graph (via networkx);
* **snapshot isolation** / **generalized snapshot isolation**: reads from a
  consistent snapshot (at begin for SI; at-or-before begin for GSI) plus
  first-committer-wins among concurrent writers.

The paper's example histories H1/H2/H3 live in
:mod:`repro.histories.examples` and the tests verify each claim the paper
makes about them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional, Sequence

import networkx as nx

__all__ = [
    "OpKind",
    "Op",
    "AbstractHistory",
    "begin",
    "read",
    "write",
    "commit",
    "abort",
    "is_conflict_serializable",
    "strong_consistency_violations",
    "is_strongly_consistent",
    "is_snapshot_isolated",
]


class OpKind(enum.Enum):
    """Kind of a history operation."""

    BEGIN = "B"
    READ = "R"
    WRITE = "W"
    COMMIT = "C"
    ABORT = "A"


@dataclass(frozen=True)
class Op:
    """One operation of transaction ``txn`` (item/value for reads/writes)."""

    kind: OpKind
    txn: str
    item: Optional[str] = None
    value: Any = None

    def __str__(self) -> str:
        if self.kind in (OpKind.READ, OpKind.WRITE):
            return f"{self.kind.value}_{self.txn}({self.item}={self.value})"
        return f"{self.kind.value}_{self.txn}"


def begin(txn: str) -> Op:
    """``B_txn``"""
    return Op(OpKind.BEGIN, txn)


def read(txn: str, item: str, value: Any) -> Op:
    """``R_txn(item=value)``"""
    return Op(OpKind.READ, txn, item, value)


def write(txn: str, item: str, value: Any) -> Op:
    """``W_txn(item=value)``"""
    return Op(OpKind.WRITE, txn, item, value)


def commit(txn: str) -> Op:
    """``C_txn``"""
    return Op(OpKind.COMMIT, txn)


def abort(txn: str) -> Op:
    """``A_txn``"""
    return Op(OpKind.ABORT, txn)


class AbstractHistory:
    """An ordered sequence of operations with validity checks.

    ``initial`` maps each item to its value before the history starts
    (defaulting to 0, matching the paper's examples).
    """

    def __init__(self, ops: Sequence[Op], initial: Optional[dict[str, Any]] = None):
        self.ops = list(ops)
        self.initial = dict(initial or {})
        self._validate()

    def _validate(self) -> None:
        state: dict[str, str] = {}
        for op in self.ops:
            current = state.get(op.txn)
            if op.kind is OpKind.BEGIN:
                if current is not None:
                    raise ValueError(f"{op.txn} begins twice")
                state[op.txn] = "active"
            elif op.kind in (OpKind.READ, OpKind.WRITE):
                if current != "active":
                    raise ValueError(f"{op} outside an active transaction")
                if op.item is None:
                    raise ValueError(f"{op} lacks an item")
            elif op.kind in (OpKind.COMMIT, OpKind.ABORT):
                if current != "active":
                    raise ValueError(f"{op} without an active transaction")
                state[op.txn] = "committed" if op.kind is OpKind.COMMIT else "aborted"
        self._final_state = state

    # -- basic queries ------------------------------------------------------
    @property
    def transactions(self) -> list[str]:
        """All transaction names, in order of first appearance."""
        seen: list[str] = []
        for op in self.ops:
            if op.txn not in seen:
                seen.append(op.txn)
        return seen

    def committed_transactions(self) -> list[str]:
        """Names of committed transactions, in commit order."""
        return [op.txn for op in self.ops if op.kind is OpKind.COMMIT]

    def is_committed(self, txn: str) -> bool:
        return self._final_state.get(txn) == "committed"

    def index_of(self, kind: OpKind, txn: str) -> int:
        """Position of the (unique) begin/commit/abort op of ``txn``."""
        for i, op in enumerate(self.ops):
            if op.kind is kind and op.txn == txn:
                return i
        raise KeyError(f"no {kind.value}_{txn} in history")

    def ops_of(self, txn: str) -> list[Op]:
        return [op for op in self.ops if op.txn == txn]

    def reads_of(self, txn: str) -> list[Op]:
        return [op for op in self.ops if op.txn == txn and op.kind is OpKind.READ]

    def writes_of(self, txn: str) -> list[Op]:
        return [op for op in self.ops if op.txn == txn and op.kind is OpKind.WRITE]

    def write_items(self, txn: str) -> set[str]:
        return {op.item for op in self.writes_of(txn)}

    def committed_value_as_of(self, item: str, position: int) -> Any:
        """The latest committed value of ``item`` before index ``position``.

        "Committed before" means the writer's COMMIT op precedes
        ``position``; among several, the one committing last wins.
        """
        value = self.initial.get(item, 0)
        commits_before = {
            op.txn: i
            for i, op in enumerate(self.ops[:position])
            if op.kind is OpKind.COMMIT
        }
        best_commit = -1
        for i, op in enumerate(self.ops):
            if op.kind is OpKind.WRITE and op.item == item:
                commit_at = commits_before.get(op.txn)
                # >= so that a transaction's *last* write to the item wins
                # over its earlier writes (same commit position).
                if commit_at is not None and commit_at >= best_commit:
                    best_commit = commit_at
                    value = op.value
        return value

    def __str__(self) -> str:
        return "{" + ", ".join(str(op) for op in self.ops) + "}"


# ---------------------------------------------------------------------------
# Conflict serializability
# ---------------------------------------------------------------------------

def conflict_graph(history: AbstractHistory) -> "nx.DiGraph":
    """Conflict (precedence) graph over committed transactions.

    Edge T_a → T_b for each pair of conflicting operations (same item, at
    least one write, different committed transactions) where T_a's operation
    precedes T_b's in the history.
    """
    committed = set(history.committed_transactions())
    graph = nx.DiGraph()
    graph.add_nodes_from(committed)
    data_ops = [
        (i, op)
        for i, op in enumerate(history.ops)
        if op.kind in (OpKind.READ, OpKind.WRITE) and op.txn in committed
    ]
    for a_index, a in data_ops:
        for b_index, b in data_ops:
            if a_index >= b_index or a.txn == b.txn or a.item != b.item:
                continue
            if a.kind is OpKind.WRITE or b.kind is OpKind.WRITE:
                graph.add_edge(a.txn, b.txn)
    return graph


def is_conflict_serializable(history: AbstractHistory) -> bool:
    """True when the conflict graph is acyclic."""
    return nx.is_directed_acyclic_graph(conflict_graph(history))


# ---------------------------------------------------------------------------
# Strong consistency (Definition 1)
# ---------------------------------------------------------------------------

def strong_consistency_violations(history: AbstractHistory) -> list[str]:
    """Violations of Definition 1 found in the history.

    For each committed transaction T_j and each of its reads R_j(X)=v:
    the value must be the latest committed value of X as of B_j (or T_j's
    own earlier write).  If some T_i committed a different value to X before
    T_j began and T_j read an older one, that pair violates "T_i commits
    before T_j starts ⇒ T_i precedes T_j".
    """
    violations = []
    for txn in history.committed_transactions():
        begin_at = history.index_of(OpKind.BEGIN, txn)
        own_writes: dict[str, Any] = {}
        for op in history.ops_of(txn):
            if op.kind is OpKind.WRITE:
                own_writes[op.item] = op.value
            elif op.kind is OpKind.READ:
                if op.item in own_writes:
                    if op.value != own_writes[op.item]:
                        violations.append(
                            f"{txn} read {op.item}={op.value!r} after writing "
                            f"{own_writes[op.item]!r}"
                        )
                    continue
                expected = history.committed_value_as_of(op.item, begin_at)
                if op.value != expected:
                    violations.append(
                        f"{txn} read {op.item}={op.value!r} but the latest "
                        f"committed value at its begin was {expected!r}"
                    )
    return violations


def is_strongly_consistent(history: AbstractHistory) -> bool:
    """True when no strong-consistency violations exist."""
    return not strong_consistency_violations(history)


# ---------------------------------------------------------------------------
# Snapshot isolation / generalized snapshot isolation
# ---------------------------------------------------------------------------

def is_snapshot_isolated(history: AbstractHistory, generalized: bool = False) -> bool:
    """True when every committed transaction could have read from a
    consistent snapshot and first-committer-wins holds.

    With ``generalized=False`` the snapshot must be taken exactly at the
    transaction's begin (conventional SI).  With ``generalized=True`` any
    snapshot point at-or-before the begin is allowed (GSI) — this is what a
    replica serving a slightly stale copy provides.

    First-committer-wins: two committed transactions whose
    [snapshot, commit] intervals overlap must not write a common item.
    """
    snapshot_points: dict[str, int] = {}
    for txn in history.committed_transactions():
        begin_at = history.index_of(OpKind.BEGIN, txn)
        candidates = range(begin_at, -1, -1) if generalized else [begin_at]
        chosen = None
        for point in candidates:
            if _reads_consistent_at(history, txn, point):
                chosen = point
                break
        if chosen is None:
            return False
        snapshot_points[txn] = chosen

    committed = history.committed_transactions()
    for i, a in enumerate(committed):
        for b in committed[i + 1:]:
            a_interval = (snapshot_points[a], history.index_of(OpKind.COMMIT, a))
            b_interval = (snapshot_points[b], history.index_of(OpKind.COMMIT, b))
            overlap = (
                a_interval[0] < b_interval[1] and b_interval[0] < a_interval[1]
            )
            if overlap and history.write_items(a) & history.write_items(b):
                return False
    return True


def _reads_consistent_at(history: AbstractHistory, txn: str, point: int) -> bool:
    """Do all of ``txn``'s reads match the committed state at ``point``
    (plus the transaction's own earlier writes)?"""
    own: dict[str, Any] = {}
    for op in history.ops_of(txn):
        if op.kind is OpKind.WRITE:
            own[op.item] = op.value
        elif op.kind is OpKind.READ:
            if op.item in own:
                if op.value != own[op.item]:
                    return False
            elif op.value != history.committed_value_as_of(op.item, point):
                return False
    return True
