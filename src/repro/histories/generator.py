"""Random abstract-history generators.

Utilities for producing :class:`~repro.histories.abstract.AbstractHistory`
instances for testing and exploration:

* :func:`serial_history` — a correct single-copy serial execution (every
  read returns the latest committed value).  Serial histories are the
  "ground truth" against which the checkers' positive answers are tested.
* :func:`interleaved_history` — an arbitrary valid interleaving with
  arbitrary read values; useful for probing the checkers' negative answers
  and containment properties.

Both take any object with the small random interface of
:class:`repro.sim.rng.Rng` (``randint``, ``choice``, ``random``), so they
compose with the library's deterministic streams.
"""

from __future__ import annotations

from typing import Sequence

from .abstract import AbstractHistory, begin, commit, read, write

__all__ = ["serial_history", "interleaved_history"]

DEFAULT_ITEMS = ("X", "Y", "Z")


def serial_history(
    rng,
    num_txns: int = 4,
    max_ops: int = 4,
    items: Sequence[str] = DEFAULT_ITEMS,
) -> AbstractHistory:
    """A serial, single-copy execution over ``items`` (initial value 0)."""
    if num_txns < 1:
        raise ValueError("num_txns must be >= 1")
    state = {item: 0 for item in items}
    ops = []
    for index in range(num_txns):
        txn = f"T{index}"
        ops.append(begin(txn))
        local = dict(state)
        for _ in range(rng.randint(1, max_ops)):
            item = rng.choice(list(items))
            if rng.random() < 0.5:
                ops.append(read(txn, item, local[item]))
            else:
                value = rng.randint(1, 9)
                ops.append(write(txn, item, value))
                local[item] = value
        ops.append(commit(txn))
        state = local
    return AbstractHistory(ops)


def interleaved_history(
    rng,
    num_txns: int = 3,
    max_ops: int = 3,
    items: Sequence[str] = DEFAULT_ITEMS,
    max_value: int = 5,
) -> AbstractHistory:
    """An arbitrary valid interleaving with arbitrary read values.

    Reads draw values uniformly from ``[0, max_value]``, so most generated
    histories violate consistency properties — by design: they exercise the
    checkers' rejection paths.
    """
    if num_txns < 1:
        raise ValueError("num_txns must be >= 1")
    pending = {
        f"T{i}": ["B"] + ["O"] * rng.randint(1, max_ops) + ["C"]
        for i in range(num_txns)
    }
    ops = []
    alive = sorted(pending)
    while alive:
        txn = rng.choice(alive)
        step = pending[txn].pop(0)
        if step == "B":
            ops.append(begin(txn))
        elif step == "C":
            ops.append(commit(txn))
        else:
            item = rng.choice(list(items))
            if rng.random() < 0.5:
                ops.append(read(txn, item, rng.randint(0, max_value)))
            else:
                ops.append(write(txn, item, rng.randint(1, max_value)))
        if not pending[txn]:
            alive.remove(txn)
    return AbstractHistory(ops)
