"""``python -m repro`` — the experiment CLI."""

import sys

from .cli import main

sys.exit(main())
